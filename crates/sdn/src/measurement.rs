//! The measurement pipeline (paper §2.1).
//!
//! "FUBAR needs periodic per-aggregate bandwidth measurements and
//! approximate flow counts for each aggregate." Real controllers read
//! sampled counters, so estimates are noisy; the estimator applies
//! multiplicative Gaussian noise, EWMA-smooths rates, and feeds
//! per-flow rate observations into the utility crate's
//! [`InflectionEstimator`] so bandwidth demand peaks are *learned*, not
//! assumed (paper §2.2).

use crate::fabric::AggregateCounter;
use fubar_topology::{Bandwidth, Delay};
use fubar_traffic::TrafficMatrix;
use fubar_utility::InflectionEstimator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the measurement pipeline.
#[derive(Clone, Debug)]
pub struct MeasurementConfig {
    /// Relative standard deviation of counter noise (0 = perfect
    /// counters).
    pub noise_rel_std: f64,
    /// EWMA gain for rate smoothing, in (0, 1].
    pub ewma_gain: f64,
    /// Headroom the inflection estimator adds to learned peaks.
    pub inference_headroom: f64,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            noise_rel_std: 0.05,
            ewma_gain: 0.4,
            inference_headroom: 1.1,
        }
    }
}

/// One aggregate's current estimate.
#[derive(Clone, Debug, Default)]
pub struct AggregateEstimate {
    /// Smoothed aggregate rate, bits/s.
    pub rate_bps: f64,
    /// Estimated flow count (noisy, at least 1 once traffic is seen).
    pub flow_count: u32,
    /// Learned per-flow demand peak, if inference has converged.
    pub demand_peak: Option<Bandwidth>,
}

/// Turns raw fabric counters into a traffic-matrix estimate.
pub struct Estimator {
    config: MeasurementConfig,
    rng: StdRng,
    smoothed_rate: Vec<f64>,
    inference: Vec<InflectionEstimator>,
    flow_estimate: Vec<u32>,
    epochs_seen: usize,
}

impl Estimator {
    /// Creates an estimator for `n_aggregates`, deterministic in `seed`.
    pub fn new(n_aggregates: usize, config: MeasurementConfig, seed: u64) -> Self {
        assert!(
            config.noise_rel_std >= 0.0,
            "noise std must be non-negative"
        );
        assert!(
            config.ewma_gain > 0.0 && config.ewma_gain <= 1.0,
            "ewma gain must be in (0,1]"
        );
        Estimator {
            rng: StdRng::seed_from_u64(seed),
            smoothed_rate: vec![0.0; n_aggregates],
            inference: vec![
                InflectionEstimator::new(config.ewma_gain, config.inference_headroom);
                n_aggregates
            ],
            flow_estimate: vec![0; n_aggregates],
            config,
            epochs_seen: 0,
        }
    }

    /// Applies multiplicative noise to a non-negative measurement.
    fn noisy(&mut self, value: f64) -> f64 {
        if self.config.noise_rel_std == 0.0 || value == 0.0 {
            return value;
        }
        // Box-Muller Gaussian from two uniforms; rand's StdRng is enough.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (value * (1.0 + self.config.noise_rel_std * z)).max(0.0)
    }

    /// Consumes one epoch of fabric counters.
    pub fn observe(&mut self, counters: &[AggregateCounter], epoch_duration: Delay) {
        assert_eq!(
            counters.len(),
            self.smoothed_rate.len(),
            "counter population changed"
        );
        let dt = epoch_duration.secs();
        for (i, c) in counters.iter().enumerate() {
            let rate = self.noisy(c.bytes_last_epoch * 8.0 / dt);
            let s = &mut self.smoothed_rate[i];
            *s += self.config.ewma_gain * (rate - *s);

            let flows = self.noisy(f64::from(c.flows_last_epoch)).round() as u32;
            self.flow_estimate[i] = flows.max(u32::from(c.flows_last_epoch > 0));

            if c.flows_last_epoch > 0 {
                let per_flow = rate / f64::from(c.flows_last_epoch);
                self.inference[i].observe(
                    Bandwidth::from_bps(per_flow.max(0.0)),
                    c.congested_last_epoch,
                );
            }
        }
        self.epochs_seen += 1;
    }

    /// The current estimate for one aggregate.
    pub fn estimate(&self, idx: usize) -> AggregateEstimate {
        AggregateEstimate {
            rate_bps: self.smoothed_rate[idx],
            flow_count: self.flow_estimate[idx],
            demand_peak: self.inference[idx].estimate(),
        }
    }

    /// Builds the traffic matrix the controller optimizes: the true
    /// aggregate population (ingress/egress/class are long-lived state
    /// the controller knows) with *measured* flow counts and, where
    /// inference has evidence, *learned* demand peaks.
    pub fn estimated_matrix(&self, template: &TrafficMatrix) -> TrafficMatrix {
        assert_eq!(template.len(), self.smoothed_rate.len());
        let mut aggregates = Vec::with_capacity(template.len());
        for a in template.iter() {
            let mut est = a.clone();
            let measured = self.flow_estimate[a.id.index()];
            if measured > 0 {
                est.flow_count = measured;
            }
            if let Some(peak) = self.inference[a.id.index()].estimate() {
                // Only shrink toward measured reality; never inflate the
                // configured class peak (congested samples already raise
                // the estimate inside the inference module).
                if peak < est.utility.peak_demand() {
                    est.utility = est.utility.with_peak_demand(peak);
                }
            }
            aggregates.push(est);
        }
        TrafficMatrix::new(aggregates)
    }

    /// Epochs observed so far.
    pub fn epochs_seen(&self) -> usize {
        self.epochs_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(rate_bps: f64, flows: u32, congested: bool, dt: f64) -> Vec<AggregateCounter> {
        vec![AggregateCounter {
            bytes_last_epoch: rate_bps * dt / 8.0,
            bytes_total: 0.0,
            flows_last_epoch: flows,
            congested_last_epoch: congested,
        }]
    }

    #[test]
    fn noiseless_estimator_converges_exactly() {
        let cfg = MeasurementConfig {
            noise_rel_std: 0.0,
            ewma_gain: 1.0,
            inference_headroom: 1.0,
        };
        let mut e = Estimator::new(1, cfg, 7);
        e.observe(
            &counters(500_000.0, 10, false, 10.0),
            Delay::from_secs(10.0),
        );
        let est = e.estimate(0);
        assert!((est.rate_bps - 500_000.0).abs() < 1e-6);
        assert_eq!(est.flow_count, 10);
        // Per-flow 50 kb/s observed uncongested -> learned peak 50 kb/s.
        assert!((est.demand_peak.unwrap().kbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_estimates_stay_close_on_average() {
        let cfg = MeasurementConfig {
            noise_rel_std: 0.1,
            ewma_gain: 0.3,
            inference_headroom: 1.0,
        };
        let mut e = Estimator::new(1, cfg, 42);
        for _ in 0..200 {
            e.observe(
                &counters(1_000_000.0, 10, false, 10.0),
                Delay::from_secs(10.0),
            );
        }
        let est = e.estimate(0);
        let rel_err = (est.rate_bps - 1_000_000.0).abs() / 1_000_000.0;
        assert!(rel_err < 0.1, "smoothed relative error {rel_err}");
        assert!(e.epochs_seen() == 200);
    }

    #[test]
    fn congested_epochs_do_not_teach_low_peaks() {
        let cfg = MeasurementConfig {
            noise_rel_std: 0.0,
            ewma_gain: 1.0,
            inference_headroom: 1.0,
        };
        let mut e = Estimator::new(1, cfg, 7);
        // Congested epochs with per-flow 20 kb/s: no peak learned.
        e.observe(&counters(200_000.0, 10, true, 10.0), Delay::from_secs(10.0));
        assert_eq!(e.estimate(0).demand_peak, None);
        // One uncongested epoch at 80 kb/s per flow teaches the peak.
        e.observe(
            &counters(800_000.0, 10, false, 10.0),
            Delay::from_secs(10.0),
        );
        assert!((e.estimate(0).demand_peak.unwrap().kbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn estimated_matrix_shrinks_overconfigured_peaks() {
        use fubar_graph::NodeId;
        use fubar_traffic::{Aggregate, AggregateId};
        use fubar_utility::TrafficClass;
        let template = TrafficMatrix::new(vec![Aggregate::new(
            AggregateId(0),
            NodeId(0),
            NodeId(1),
            TrafficClass::BulkTransfer, // configured peak 120 kb/s
            10,
        )]);
        let cfg = MeasurementConfig {
            noise_rel_std: 0.0,
            ewma_gain: 1.0,
            inference_headroom: 1.0,
        };
        let mut e = Estimator::new(1, cfg, 7);
        // Uncongested but only using 40 kb/s per flow: the app is the
        // limit, so the demand peak should shrink.
        e.observe(
            &counters(400_000.0, 10, false, 10.0),
            Delay::from_secs(10.0),
        );
        let est_tm = e.estimated_matrix(&template);
        let peak = est_tm.aggregate(AggregateId(0)).per_flow_demand();
        assert!((peak.kbps() - 40.0).abs() < 1e-9, "got {peak}");
    }

    #[test]
    fn estimated_matrix_never_inflates_peaks() {
        use fubar_graph::NodeId;
        use fubar_traffic::{Aggregate, AggregateId};
        use fubar_utility::TrafficClass;
        let template = TrafficMatrix::new(vec![Aggregate::new(
            AggregateId(0),
            NodeId(0),
            NodeId(1),
            TrafficClass::RealTime, // configured peak 50 kb/s
            10,
        )]);
        let cfg = MeasurementConfig {
            noise_rel_std: 0.0,
            ewma_gain: 1.0,
            inference_headroom: 2.0, // aggressive headroom
        };
        let mut e = Estimator::new(1, cfg, 7);
        e.observe(
            &counters(500_000.0, 10, false, 10.0),
            Delay::from_secs(10.0),
        );
        // Learned peak would be 100 kb/s (headroom 2.0) > configured 50.
        let est_tm = e.estimated_matrix(&template);
        let peak = est_tm.aggregate(AggregateId(0)).per_flow_demand();
        assert!(
            (peak.kbps() - 50.0).abs() < 1e-9,
            "configured peak kept, got {peak}"
        );
    }

    #[test]
    fn zero_epoch_estimates_are_empty() {
        let e = Estimator::new(2, MeasurementConfig::default(), 1);
        assert_eq!(e.estimate(0).flow_count, 0);
        assert_eq!(e.estimate(1).demand_peak, None);
    }

    #[test]
    #[should_panic(expected = "population changed")]
    fn population_change_rejected() {
        let mut e = Estimator::new(1, MeasurementConfig::default(), 1);
        e.observe(&[], Delay::from_secs(1.0));
    }
}
