//! Installed forwarding state: weighted path groups per aggregate.
//!
//! In a real deployment FUBAR's output becomes OpenFlow group-table
//! buckets or MPLS-TE tunnels with load-share weights (paper §1, §5:
//! "intended to be used as an offline controller in SDN or MPLS
//! networks"). Here the installed state is a [`RuleSet`]: for every
//! aggregate, the list of paths with integer weights (the flow counts
//! the optimizer assigned). The fabric maps whatever traffic *actually*
//! arrives onto these weights.

use fubar_core::Allocation;
use fubar_graph::{LinkSet, Path};
use fubar_traffic::{AggregateId, TrafficMatrix};

/// One aggregate's installed weighted paths.
#[derive(Clone, Debug, Default)]
pub struct GroupEntry {
    /// `(path, weight)` buckets; weights are relative shares.
    pub buckets: Vec<(Path, u32)>,
}

impl GroupEntry {
    /// A group with a single path carrying all the weight — the rule a
    /// controller installs for a freshly arrived aggregate before the
    /// optimizer has had a say.
    pub fn single(path: Path, weight: u32) -> Self {
        GroupEntry {
            buckets: vec![(path, weight)],
        }
    }

    /// Total weight across buckets.
    pub fn total_weight(&self) -> u64 {
        self.buckets.iter().map(|&(_, w)| u64::from(w)).sum()
    }

    /// Buckets whose paths avoid every link in `down`, preserving order.
    pub fn alive_buckets(&self, down: &LinkSet) -> Vec<&(Path, u32)> {
        self.buckets
            .iter()
            .filter(|(p, _)| p.links().iter().all(|l| !down.contains(*l)))
            .collect()
    }
}

/// The complete installed forwarding state, indexed by [`AggregateId`].
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    groups: Vec<GroupEntry>,
}

impl RuleSet {
    /// Snapshots an optimizer [`Allocation`] into installable rules
    /// (only paths with non-zero flows become buckets).
    pub fn from_allocation(allocation: &Allocation, tm: &TrafficMatrix) -> Self {
        let mut groups = Vec::with_capacity(tm.len());
        for a in tm.iter() {
            let ps = allocation.path_set(a.id);
            let mut buckets = Vec::new();
            for (idx, p) in ps.iter().enumerate() {
                let w = allocation.flows_on(a.id, idx);
                if w > 0 {
                    buckets.push((p.clone(), w));
                }
            }
            groups.push(GroupEntry { buckets });
        }
        RuleSet { groups }
    }

    /// Number of aggregates covered.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group for one aggregate, if covered.
    pub fn group(&self, id: AggregateId) -> Option<&GroupEntry> {
        self.groups.get(id.index())
    }

    /// Replaces one aggregate's group in place — a single-aggregate rule
    /// update (OpenFlow group-mod), as opposed to reinstalling the whole
    /// table via [`Fabric::install`](crate::Fabric::install).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not covered by this rule set.
    pub fn set_group(&mut self, id: AggregateId, entry: GroupEntry) {
        self.groups[id.index()] = entry;
    }

    /// Removes one aggregate's installed paths (the aggregate departed).
    /// The group slot survives, empty, so indices stay dense.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not covered by this rule set.
    pub fn clear_group(&mut self, id: AggregateId) {
        self.groups[id.index()] = GroupEntry::default();
    }

    /// Splits `flows` across the given ordered buckets proportionally to
    /// weight, using largest-remainder rounding so the counts always sum
    /// to `flows` and the result is deterministic.
    pub fn split_flows(buckets: &[(&Path, u32)], flows: u32) -> Vec<u32> {
        if buckets.is_empty() {
            return Vec::new();
        }
        let total: f64 = buckets.iter().map(|&(_, w)| f64::from(w)).sum();
        if total <= 0.0 {
            // Degenerate weights: everything on the first bucket.
            let mut out = vec![0; buckets.len()];
            out[0] = flows;
            return out;
        }
        let mut out = Vec::with_capacity(buckets.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(buckets.len());
        let mut assigned: u32 = 0;
        for (i, &(_, w)) in buckets.iter().enumerate() {
            let exact = f64::from(flows) * f64::from(w) / total;
            let floor = exact.floor() as u32;
            out.push(floor);
            assigned += floor;
            remainders.push((i, exact - f64::from(floor)));
        }
        // Hand out the leftover flows to the largest remainders
        // (ties broken by bucket order).
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut left = flows - assigned;
        for (i, _) in remainders {
            if left == 0 {
                break;
            }
            out[i] += 1;
            left -= 1;
        }
        out
    }

    /// Total number of installed buckets (a proxy for flow-table size).
    pub fn bucket_count(&self) -> usize {
        self.groups.iter().map(|g| g.buckets.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fubar_graph::NodeId;
    use fubar_topology::{generators, Bandwidth, Delay};
    use fubar_traffic::Aggregate;
    use fubar_utility::TrafficClass;

    fn fixture() -> (fubar_topology::Topology, TrafficMatrix) {
        let topo = generators::ring(4, Bandwidth::from_mbps(1.0), Delay::from_ms(1.0));
        let tm = TrafficMatrix::new(vec![Aggregate::new(
            AggregateId(0),
            NodeId(0),
            NodeId(2),
            TrafficClass::BulkTransfer,
            10,
        )]);
        (topo, tm)
    }

    #[test]
    fn from_allocation_snapshots_nonzero_buckets() {
        let (topo, tm) = fixture();
        let alloc = Allocation::all_on_shortest_paths(&topo, &tm);
        let rules = RuleSet::from_allocation(&alloc, &tm);
        assert_eq!(rules.len(), 1);
        let g = rules.group(AggregateId(0)).unwrap();
        assert_eq!(g.buckets.len(), 1);
        assert_eq!(g.buckets[0].1, 10);
        assert_eq!(g.total_weight(), 10);
        assert_eq!(rules.bucket_count(), 1);
    }

    #[test]
    fn split_flows_proportional_and_exact() {
        let (topo, tm) = fixture();
        let alloc = Allocation::all_on_shortest_paths(&topo, &tm);
        let p = alloc.path_set(AggregateId(0)).path(0).clone();
        let buckets = [(&p, 3u32), (&p, 1u32)];
        let split = RuleSet::split_flows(&buckets, 10);
        assert_eq!(split.iter().sum::<u32>(), 10);
        assert_eq!(split, vec![8, 2]); // 7.5 -> 7 + remainder, 2.5 -> 2; leftover to larger remainder
        let _ = tm;
    }

    #[test]
    fn split_flows_handles_edge_cases() {
        let (topo, tm) = fixture();
        let alloc = Allocation::all_on_shortest_paths(&topo, &tm);
        let p = alloc.path_set(AggregateId(0)).path(0).clone();
        // Zero total weight -> everything on first bucket.
        let buckets = [(&p, 0u32), (&p, 0u32)];
        assert_eq!(RuleSet::split_flows(&buckets, 5), vec![5, 0]);
        // Empty buckets -> empty split.
        assert!(RuleSet::split_flows(&[], 5).is_empty());
        // Exact division has no remainder games.
        let buckets = [(&p, 1u32), (&p, 1u32)];
        assert_eq!(RuleSet::split_flows(&buckets, 4), vec![2, 2]);
        let _ = tm;
    }

    #[test]
    fn degenerate_zero_weights_with_dead_first_bucket_go_to_first_alive() {
        // All-zero weights are degenerate: `split_flows` piles the
        // flows onto bucket 0 *of the slice it is given*. The data
        // plane must therefore always pass the alive-filtered buckets,
        // never the raw group — otherwise the flows land on a possibly
        // failed bucket 0. This pins the contract down.
        let (topo, tm) = fixture();
        let alloc = Allocation::all_on_shortest_paths(&topo, &tm);
        let p0 = alloc.path_set(AggregateId(0)).path(0).clone();
        let used: LinkSet = p0.links().iter().copied().collect();
        let p1 = topo
            .graph()
            .shortest_path(fubar_graph::NodeId(0), fubar_graph::NodeId(2), &used)
            .unwrap();
        let group = GroupEntry {
            buckets: vec![(p0.clone(), 0), (p1.clone(), 0)],
        };
        // First bucket dead: only p1 survives the filter.
        let mut down = LinkSet::new();
        down.insert(p0.links()[0]);
        let alive = group.alive_buckets(&down);
        assert_eq!(alive.len(), 1);
        let refs: Vec<(&Path, u32)> = alive.iter().map(|(p, w)| (p, *w)).collect();
        let split = RuleSet::split_flows(&refs, 7);
        assert_eq!(split, vec![7], "all flows on the first *alive* bucket");
        assert!(
            !refs[0].0.uses_link(p0.links()[0]),
            "and that bucket avoids the failed link"
        );
        // Unfiltered degenerate split for contrast: everything on the
        // (dead) first bucket — the caller-side hazard.
        let raw: Vec<(&Path, u32)> = group.buckets.iter().map(|(p, w)| (p, *w)).collect();
        assert_eq!(RuleSet::split_flows(&raw, 7), vec![7, 0]);
    }

    #[test]
    fn alive_buckets_filters_failed_paths() {
        let (topo, tm) = fixture();
        let alloc = Allocation::all_on_shortest_paths(&topo, &tm);
        let rules = RuleSet::from_allocation(&alloc, &tm);
        let g = rules.group(AggregateId(0)).unwrap();
        let mut down = LinkSet::new();
        assert_eq!(g.alive_buckets(&down).len(), 1);
        down.insert(g.buckets[0].0.links()[0]);
        assert!(g.alive_buckets(&down).is_empty());
    }
}
