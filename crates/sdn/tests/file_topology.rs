//! File-backed topologies are first-class fabric substrates: a
//! `.topo`-loaded Hurricane Electric core must be indistinguishable —
//! bitwise — from the generator's, all the way through a fabric
//! measurement. This is what makes the committed `topologies/` catalog
//! trustworthy: the exported artifacts are not approximations of the
//! generators, they *are* the generators, through a text round trip.

use fubar_sdn::Fabric;
use fubar_topology::{catalog, format, generators, Bandwidth, Delay};
use fubar_traffic::{workload, WorkloadConfig};

/// The committed `topologies/he-core-31.topo` (embedded in the catalog)
/// is the 100 Mb/s generator export, and a fabric built on it measures
/// bitwise-identically to one built on the generator output directly:
/// same workload, same bundles, same water-filling equilibrium, same
/// utility report — every float equal by bits.
#[test]
fn file_loaded_he_core_measures_bitwise_like_the_generator() {
    let from_generator = generators::he_core(Bandwidth::from_mbps(100.0));
    let from_file = catalog::load("he-core-31").expect("he-core-31 is committed");
    // Structural equality is bitwise on names, coordinates, capacities,
    // delays, and link layout.
    assert_eq!(from_generator, from_file);

    let cfg = WorkloadConfig {
        include_intra_pop: true,
        ..WorkloadConfig::default()
    };
    let seed = 11;
    let epoch = Delay::from_secs(10.0);
    let tm_gen = workload::generate(&from_generator, &cfg, seed);
    let tm_file = workload::generate(&from_file, &cfg, seed);
    assert_eq!(tm_gen.len(), 961, "31^2 aggregates with intra-POP pairs");

    let mut fabric_gen = Fabric::new(from_generator, tm_gen, epoch);
    let mut fabric_file = Fabric::new(from_file, tm_file, epoch);
    let a = fabric_gen.peek();
    let b = fabric_file.peek();
    assert_eq!(
        a.bitwise_mismatch(&b),
        None,
        "file-loaded HE core must measure bitwise like the generator"
    );
    // And through an epoch run (counters, cache reuse) as well.
    let a = fabric_gen.run_epoch();
    let b = fabric_file.run_epoch();
    assert_eq!(a.bitwise_mismatch(&b), None);
}

/// The same fidelity holds for a serialize → parse round trip done in
/// memory (no committed artifact in the loop): exporting any generator
/// and re-importing it changes nothing a fabric can observe.
#[test]
fn in_memory_export_import_preserves_fabric_measurement() {
    let original = generators::abilene(Bandwidth::from_mbps(3.0));
    let reloaded = format::parse(&format::serialize(&original)).expect("export reparses");
    assert_eq!(original, reloaded);

    let cfg = WorkloadConfig {
        include_intra_pop: false,
        flow_count: (2, 6),
        ..WorkloadConfig::default()
    };
    let tm_a = workload::generate(&original, &cfg, 7);
    let tm_b = workload::generate(&reloaded, &cfg, 7);
    let epoch = Delay::from_secs(5.0);
    let a = Fabric::new(original, tm_a, epoch).peek();
    let b = Fabric::new(reloaded, tm_b, epoch).peek();
    assert_eq!(a.bitwise_mismatch(&b), None);
}
