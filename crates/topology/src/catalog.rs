//! The bundled topology catalog.
//!
//! The `.topo` files live as plain-text artifacts in the repository's
//! `topologies/` directory (the single source of truth — embedded here
//! at compile time, same philosophy as the scenario catalog) so they
//! diff like code and load identically from the CLI, scenario specs
//! (`topology file <path.topo>`), benches, and tests.
//!
//! Four entries are canonical exports of the generators
//! (`fubar-cli topology export` writes them); two are hand-maintained
//! real-world-shaped backbones with geo-derived delays. CI runs
//! `fubar-cli topology validate` over every committed file, which
//! checks the bitwise `serialize ∘ parse` round trip.

use crate::format;
use crate::topology::Topology;

/// `(name, file text)` for every bundled topology.
pub const CATALOG: [(&str, &str); 6] = [
    (
        "he-core-31",
        include_str!("../../../topologies/he-core-31.topo"),
    ),
    ("abilene", include_str!("../../../topologies/abilene.topo")),
    (
        "hypergrowth-64",
        include_str!("../../../topologies/hypergrowth-64.topo"),
    ),
    (
        "planetary-256",
        include_str!("../../../topologies/planetary-256.topo"),
    ),
    ("nren-eu", include_str!("../../../topologies/nren-eu.topo")),
    (
        "us-backbone-40",
        include_str!("../../../topologies/us-backbone-40.topo"),
    ),
];

/// The names of all bundled topologies.
pub fn names() -> Vec<&'static str> {
    CATALOG.iter().map(|&(n, _)| n).collect()
}

/// The raw file text of a bundled topology, by exact name.
pub fn text(name: &str) -> Option<&'static str> {
    CATALOG.iter().find(|&&(n, _)| n == name).map(|&(_, t)| t)
}

/// Looks a bundled topology up by name, `<name>.topo`, or
/// `topologies/<name>.topo` — the resolution scenario specs fall back
/// on when the referenced path does not exist on disk (catalog
/// scenarios reference `topologies/*.topo` and must run outside the
/// repo too). Deliberately *not* matched: any other directory prefix.
/// A missing user path like `experiments/nren-eu.topo` must stay a
/// hard error, not silently resolve to the bundled (possibly
/// different) copy because the file stem happens to collide.
pub fn find(path_or_name: &str) -> Option<&'static str> {
    let rest = path_or_name
        .strip_prefix("topologies/")
        .unwrap_or(path_or_name);
    if rest.contains(['/', '\\']) {
        return None;
    }
    let stem = rest.strip_suffix(".topo").unwrap_or(rest);
    text(stem)
}

/// Loads a bundled topology by name.
///
/// # Panics
///
/// Panics when a bundled file fails to parse — committed catalog
/// artifacts must always be well-formed (CI validates them).
pub fn load(name: &str) -> Option<Topology> {
    text(name).map(|t| {
        format::parse(t).unwrap_or_else(|e| panic!("bundled topology {name:?} must parse: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_topology_parses_and_matches_its_name() {
        for (name, _) in CATALOG {
            let t = load(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(t.name(), name, "file name and `topology` directive agree");
            assert!(t.is_connected(), "{name} must be strongly connected");
        }
        assert_eq!(names().len(), 6);
        assert!(load("no_such_topology").is_none());
    }

    #[test]
    fn every_bundled_topology_round_trips_bitwise() {
        for (name, _) in CATALOG {
            let t = load(name).unwrap();
            let back = format::parse(&format::serialize(&t))
                .unwrap_or_else(|e| panic!("{name} reserialization must parse: {e}"));
            assert_eq!(t, back, "{name} must round-trip bitwise");
        }
    }

    #[test]
    fn find_accepts_names_and_canonical_paths_only() {
        for key in ["nren-eu", "nren-eu.topo", "topologies/nren-eu.topo"] {
            assert!(find(key).is_some(), "{key} should resolve");
        }
        assert!(find("nope").is_none());
        assert!(find("topologies/nope.topo").is_none());
        // A stem collision under a different directory must NOT fall
        // back to the bundled copy: a missing user file stays an error
        // instead of silently running on the wrong substrate.
        assert!(find("experiments/nren-eu.topo").is_none());
        assert!(find("some/deep/dir/nren-eu.topo").is_none());
        assert!(find("topologies/sub/nren-eu.topo").is_none());
    }
}
