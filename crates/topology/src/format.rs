//! A tiny line-oriented text format for topologies.
//!
//! Keeps topologies diffable and round-trippable without pulling a
//! serialization framework into the workspace. Grammar (one directive per
//! line, `#` starts a comment):
//!
//! ```text
//! topology <name>
//! node <name> [<lat> <lon>]
//! link <a> <b> <capacity> <delay>     # duplex; e.g. link NY LON 100Mbps 38ms
//! link <a> <b> <capacity> geo         # delay derived from coordinates
//! simplex <a> <b> <capacity> <delay>  # one-directional
//! ```
//!
//! [`serialize`] ∘ [`parse`] is **bitwise exact**: capacities are written
//! in raw `bps` and delays in raw seconds (`s`), the two unit suffixes
//! whose parse multiplier is exactly 1.0, and Rust's shortest-round-trip
//! `f64` formatting guarantees the printed decimal reparses to the same
//! bits. (Writing delays in `ms` — the obvious human-friendly choice —
//! breaks exactness: `0.1s` prints as `100.00000000000001ms` and reparses
//! to `0.10000000000000002s`.) Hand-written files are free to use any
//! unit; only the canonical serialization is constrained.

use crate::geo::GeoPoint;
use crate::topology::{Topology, TopologyBuilder};
use crate::units::{Bandwidth, Delay};
use std::fmt;

/// A parse failure, with the 1-based line number where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the text format described in the module docs.
pub fn parse(text: &str) -> Result<Topology, ParseError> {
    let mut builder: Option<TopologyBuilder> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "topology" => {
                if builder.is_some() {
                    return Err(err(lineno, "duplicate `topology` directive"));
                }
                if tokens.len() != 2 {
                    return Err(err(lineno, "usage: topology <name>"));
                }
                builder = Some(TopologyBuilder::new(tokens[1]));
            }
            "node" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`node` before `topology`"))?;
                match tokens.len() {
                    2 => b
                        .add_node(tokens[1])
                        .map(|_| ())
                        .map_err(|e| err(lineno, e.to_string()))?,
                    4 => {
                        let lat: f64 = tokens[2]
                            .parse()
                            .map_err(|e| err(lineno, format!("bad latitude: {e}")))?;
                        let lon: f64 = tokens[3]
                            .parse()
                            .map_err(|e| err(lineno, format!("bad longitude: {e}")))?;
                        if !(-90.0..=90.0).contains(&lat) {
                            return Err(err(lineno, format!("latitude {lat} out of range")));
                        }
                        if !(-180.0..=180.0).contains(&lon) {
                            return Err(err(lineno, format!("longitude {lon} out of range")));
                        }
                        b.add_node_at(tokens[1], GeoPoint::new(lat, lon))
                            .map(|_| ())
                            .map_err(|e| err(lineno, e.to_string()))?
                    }
                    _ => return Err(err(lineno, "usage: node <name> [<lat> <lon>]")),
                }
            }
            "link" | "simplex" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "link before `topology`"))?;
                if tokens.len() != 5 {
                    return Err(err(
                        lineno,
                        format!("usage: {} <a> <b> <capacity> <delay|geo>", tokens[0]),
                    ));
                }
                let cap: Bandwidth = tokens[3].parse().map_err(|e| err(lineno, e))?;
                if tokens[0] == "simplex" {
                    if tokens[4] == "geo" {
                        return Err(err(lineno, "geo delay is only supported for duplex links"));
                    }
                    let delay: Delay = tokens[4].parse().map_err(|e| err(lineno, e))?;
                    b.add_simplex_link(tokens[1], tokens[2], cap, delay)
                        .map(|_| ())
                        .map_err(|e| err(lineno, e.to_string()))?;
                } else if tokens[4] == "geo" {
                    b.add_duplex_link_geo(tokens[1], tokens[2], cap)
                        .map(|_| ())
                        .map_err(|e| err(lineno, e.to_string()))?;
                } else {
                    let delay: Delay = tokens[4].parse().map_err(|e| err(lineno, e))?;
                    b.add_duplex_link(tokens[1], tokens[2], cap, delay)
                        .map(|_| ())
                        .map_err(|e| err(lineno, e.to_string()))?;
                }
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }
    builder
        .map(TopologyBuilder::build)
        .ok_or_else(|| err(1, "missing `topology` directive"))
}

/// Serializes a topology into the text format. Delays are written
/// explicitly (in raw seconds) even for geo-built links, so the round
/// trip is exact — bitwise — regardless of coordinate availability: the
/// `s` and `bps` suffixes are the ones whose parse multiplier is exactly
/// 1.0, and `f64`'s `Display` prints the shortest decimal that reparses
/// to the same bits.
pub fn serialize(t: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", t.name()));
    for n in t.nodes() {
        match t.node_geo(n) {
            Some(g) => out.push_str(&format!("node {} {} {}\n", t.node_name(n), g.lat, g.lon)),
            None => out.push_str(&format!("node {}\n", t.node_name(n))),
        }
    }
    let mut emitted = vec![false; t.link_count()];
    for l in t.links() {
        if emitted[l.index()] {
            continue;
        }
        let link = t.graph().link(l);
        let kind = match t.reverse_of(l) {
            Some(r) => {
                emitted[r.index()] = true;
                "link"
            }
            None => "simplex",
        };
        out.push_str(&format!(
            "{} {} {} {}bps {}s\n",
            kind,
            t.node_name(link.src),
            t.node_name(link.dst),
            t.capacity(l).bps(),
            t.delay(l).secs(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_a_small_topology() {
        let text = "
# demo
topology demo
node a
node b 40.0 -74.0
node c 51.5 0.0
link a b 100Mbps 5ms
link b c 75Mbps geo
simplex a c 10Mbps 1ms
";
        let t = parse(text).unwrap();
        assert_eq!(t.name(), "demo");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.duplex_count(), 3); // 2 duplex + 1 simplex
        assert_eq!(t.link_count(), 5);
        let ab = t
            .graph()
            .find_link(t.node("a").unwrap(), t.node("b").unwrap())
            .unwrap();
        assert_eq!(t.capacity(ab), Bandwidth::from_mbps(100.0));
        assert_eq!(t.delay(ab), Delay::from_ms(5.0));
    }

    #[test]
    fn round_trips_generated_topologies() {
        for t in [
            generators::he_core(Bandwidth::from_mbps(100.0)),
            generators::abilene(Bandwidth::from_gbps(10.0)),
            generators::dumbbell(
                2,
                Bandwidth::from_mbps(100.0),
                Bandwidth::from_mbps(10.0),
                Delay::from_ms(1.0),
            ),
        ] {
            let text = serialize(&t);
            let back = parse(&text).unwrap();
            assert_eq!(back.name(), t.name());
            assert_eq!(back.node_count(), t.node_count());
            assert_eq!(back.link_count(), t.link_count());
            for l in t.links() {
                assert_eq!(
                    back.capacity(l).bps().to_bits(),
                    t.capacity(l).bps().to_bits(),
                    "capacity mismatch on {}",
                    t.link_label(l)
                );
                assert_eq!(
                    back.delay(l).secs().to_bits(),
                    t.delay(l).secs().to_bits(),
                    "delay mismatch on {}",
                    t.link_label(l)
                );
            }
        }
    }

    /// Regression: serializing `0.1s` used to print `100.00000000000001ms`
    /// which reparsed (via `* 1e-3`) to `0.10000000000000002s` — an
    /// inexact round trip despite the docstring's promise. Raw-seconds
    /// serialization makes the parse multiplier exactly 1.0.
    #[test]
    fn awkward_delays_round_trip_bitwise() {
        let mut b = TopologyBuilder::new("awkward");
        b.add_node("a").unwrap();
        b.add_node("b").unwrap();
        // 0.1 is the canonical non-representable decimal; the geo delay
        // is a typical irrational-ish fiber latency.
        b.add_duplex_link("a", "b", Bandwidth::from_mbps(100.0), Delay::from_secs(0.1))
            .unwrap();
        b.add_node_at("x", crate::geo::GeoPoint::new(40.71, -74.01))
            .unwrap();
        b.add_node_at("y", crate::geo::GeoPoint::new(51.51, -0.13))
            .unwrap();
        b.add_duplex_link_geo("x", "y", Bandwidth::from_bps(1e6 / 3.0))
            .unwrap();
        let t = b.build();
        let back = parse(&serialize(&t)).unwrap();
        for l in t.links() {
            assert_eq!(
                back.delay(l).secs().to_bits(),
                t.delay(l).secs().to_bits(),
                "delay on {} must survive the round trip bitwise",
                t.link_label(l)
            );
            assert_eq!(
                back.capacity(l).bps().to_bits(),
                t.capacity(l).bps().to_bits(),
                "capacity on {} must survive the round trip bitwise",
                t.link_label(l)
            );
        }
        // And the canonical serialization is a fixed point.
        assert_eq!(serialize(&t), serialize(&back));
    }

    #[test]
    fn geo_delay_from_text() {
        let text = "topology t\nnode x 40.71 -74.01\nnode y 51.51 -0.13\nlink x y 1Mbps geo\n";
        let t = parse(text).unwrap();
        let l = t
            .graph()
            .find_link(t.node("x").unwrap(), t.node("y").unwrap())
            .unwrap();
        assert!((30.0..50.0).contains(&t.delay(l).ms()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("topology t\nnode a\nnode a\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));

        let e = parse("node a\n").unwrap_err();
        assert!(e.message.contains("before `topology`"));

        let e = parse("topology t\nfrobnicate a b\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("topology t\nnode a\nnode b\nlink a b 100Mbps\n").unwrap_err();
        assert!(e.message.contains("usage"));

        let e = parse("").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn geo_link_without_coords_fails_cleanly() {
        let e = parse("topology t\nnode a\nnode b\nlink a b 1Mbps geo\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("coordinates"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse("\n# hi\ntopology t # trailing\nnode a\nnode b\nlink a b 1Mbps 1ms # ok\n")
            .unwrap();
        assert_eq!(t.node_count(), 2);
    }
}
