//! Topology generators.
//!
//! The headline generator is [`he_core`], a synthesized stand-in for the
//! Hurricane Electric core topology the paper evaluates on (31 POPs, 56
//! inter-POP links — paper §3). The exact 2014 adjacency is not publicly
//! recoverable, so we reconstruct a backbone with the same node count,
//! link count, continental structure (US + Europe + Asia-Pacific rings
//! with transatlantic/transpacific trunks) and geo-derived propagation
//! delays. See DESIGN.md §1 for the substitution rationale.
//!
//! The remaining generators produce the small regular topologies used by
//! tests, examples and benchmarks: [`line()`], [`ring`], [`star`], [`grid`],
//! [`full_mesh`], [`dumbbell`], the [`abilene`] research backbone, and
//! seeded random [`waxman`] graphs.

use crate::geo::GeoPoint;
use crate::topology::{Topology, TopologyBuilder};
use crate::units::{Bandwidth, Delay};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 31 POPs of the synthesized Hurricane Electric core: name, latitude,
/// longitude.
pub const HE_POPS: [(&str, f64, f64); 31] = [
    ("Seattle", 47.61, -122.33),
    ("Portland", 45.52, -122.68),
    ("Fremont", 37.55, -121.99),
    ("SanJose", 37.34, -121.89),
    ("LosAngeles", 34.05, -118.24),
    ("Phoenix", 33.45, -112.07),
    ("LasVegas", 36.17, -115.14),
    ("Denver", 39.74, -104.99),
    ("Dallas", 32.78, -96.80),
    ("Houston", 29.76, -95.37),
    ("KansasCity", 39.10, -94.58),
    ("Chicago", 41.88, -87.63),
    ("Minneapolis", 44.98, -93.27),
    ("Toronto", 43.65, -79.38),
    ("NewYork", 40.71, -74.01),
    ("Ashburn", 39.04, -77.49),
    ("Atlanta", 33.75, -84.39),
    ("Miami", 25.76, -80.19),
    ("London", 51.51, -0.13),
    ("Paris", 48.86, 2.35),
    ("Amsterdam", 52.37, 4.90),
    ("Frankfurt", 50.11, 8.68),
    ("Zurich", 47.37, 8.54),
    ("Milan", 45.46, 9.19),
    ("Prague", 50.08, 14.44),
    ("Vienna", 48.21, 16.37),
    ("Warsaw", 52.23, 21.01),
    ("Stockholm", 59.33, 18.07),
    ("Tokyo", 35.68, 139.69),
    ("HongKong", 22.32, 114.17),
    ("Singapore", 1.35, 103.82),
];

/// The 56 duplex adjacencies of the synthesized HE core.
pub const HE_LINKS: [(&str, &str); 56] = [
    // US West Coast chain.
    ("Seattle", "Portland"),
    ("Portland", "Fremont"),
    ("Fremont", "SanJose"),
    ("SanJose", "LosAngeles"),
    ("LosAngeles", "Phoenix"),
    ("LosAngeles", "LasVegas"),
    ("LasVegas", "Phoenix"),
    ("Fremont", "LosAngeles"),
    // US interior.
    ("Seattle", "Denver"),
    ("Fremont", "Denver"),
    ("Denver", "KansasCity"),
    ("Denver", "Dallas"),
    ("Phoenix", "Dallas"),
    ("Dallas", "Houston"),
    ("Dallas", "KansasCity"),
    ("KansasCity", "Chicago"),
    ("Minneapolis", "KansasCity"),
    ("Chicago", "Minneapolis"),
    ("Minneapolis", "Seattle"),
    ("LosAngeles", "Dallas"),
    ("Denver", "Chicago"),
    ("Dallas", "Ashburn"),
    // US East.
    ("Chicago", "Toronto"),
    ("Toronto", "NewYork"),
    ("Chicago", "NewYork"),
    ("Chicago", "Ashburn"),
    ("NewYork", "Ashburn"),
    ("Ashburn", "Atlanta"),
    ("Atlanta", "Dallas"),
    ("Atlanta", "Miami"),
    ("Houston", "Miami"),
    // Transatlantic.
    ("NewYork", "London"),
    ("NewYork", "Amsterdam"),
    ("Ashburn", "London"),
    ("Ashburn", "Paris"),
    // Europe.
    ("London", "Paris"),
    ("London", "Amsterdam"),
    ("London", "Frankfurt"),
    ("Amsterdam", "Frankfurt"),
    ("Amsterdam", "Stockholm"),
    ("Paris", "Frankfurt"),
    ("Paris", "Zurich"),
    ("Frankfurt", "Zurich"),
    ("Frankfurt", "Prague"),
    ("Frankfurt", "Vienna"),
    ("Frankfurt", "Warsaw"),
    ("Zurich", "Milan"),
    ("Prague", "Vienna"),
    ("Vienna", "Warsaw"),
    ("Warsaw", "Stockholm"),
    // Transpacific & Asia.
    ("Seattle", "Tokyo"),
    ("LosAngeles", "Tokyo"),
    ("Fremont", "Tokyo"),
    ("Tokyo", "HongKong"),
    ("HongKong", "Singapore"),
    ("Singapore", "Tokyo"),
];

/// Synthesized Hurricane Electric core topology: 31 POPs, 56 duplex links,
/// geo-derived propagation delays, uniform `capacity` on every directed
/// link (the paper uses 100 Mb/s for the provisioned case and 75 Mb/s for
/// the underprovisioned one).
pub fn he_core(capacity: Bandwidth) -> Topology {
    let mut b = TopologyBuilder::new("he-core-31");
    for (name, lat, lon) in HE_POPS {
        b.add_node_at(name, GeoPoint::new(lat, lon))
            .expect("HE POP names are unique");
    }
    for (a, z) in HE_LINKS {
        b.add_duplex_link_geo(a, z, capacity)
            .expect("HE adjacency references known POPs");
    }
    b.build()
}

/// The "hypergrowth" scale tier: a synthesized backbone one growth
/// generation past the paper's 31-POP Hurricane Electric core. `regions`
/// metro regions sit on a great circle; each holds a ring of
/// `pops_per_region` POPs with a cross-chord, adjacent regions are
/// joined by two trunks (through their first and middle POPs), and
/// antipodal regions by an express link. Positions are synthetic but
/// geographic, so delays derive from fiber distance exactly like
/// [`he_core`]. The default tier (8 × 8 = 64 POPs, 92 duplex links)
/// yields a 4,096-aggregate full matrix with intra-POP pairs — the
/// beyond-HE instance the `perf_gate` hypergrowth gate and the
/// `hypergrowth` catalog scenario run on, where per-move optimizer cost
/// must stay component-bound rather than instance-bound.
///
/// # Panics
///
/// Panics when `regions < 3` or `pops_per_region < 3` (the rings
/// degenerate).
pub fn hypergrowth(regions: usize, pops_per_region: usize, capacity: Bandwidth) -> Topology {
    assert!(regions >= 3, "hypergrowth needs at least three regions");
    assert!(
        pops_per_region >= 3,
        "hypergrowth needs at least three POPs per region"
    );
    let name = |r: usize, p: usize| format!("pop{r}_{p}");
    let mut b = TopologyBuilder::new(format!("hypergrowth-{}", regions * pops_per_region));
    for r in 0..regions {
        // Region centers on a great circle, latitudes within the
        // temperate band so geo math stays well-conditioned.
        let theta = 2.0 * std::f64::consts::PI * r as f64 / regions as f64;
        let (clat, clon) = (35.0 * theta.sin(), 170.0 * theta.cos());
        for p in 0..pops_per_region {
            // Metro ring ~2° across around the region center.
            let phi = 2.0 * std::f64::consts::PI * p as f64 / pops_per_region as f64;
            let (lat, lon) = (clat + 2.0 * phi.sin(), clon + 2.0 * phi.cos());
            b.add_node_at(name(r, p), GeoPoint::new(lat, lon))
                .expect("hypergrowth POP names are unique");
        }
    }
    for r in 0..regions {
        // Intra-region ring + one cross-chord (skipped for 3-POP
        // regions, where the "chord" would duplicate a ring edge).
        for p in 0..pops_per_region {
            b.add_duplex_link_geo(&name(r, p), &name(r, (p + 1) % pops_per_region), capacity)
                .expect("ring endpoints exist");
        }
        if pops_per_region >= 4 {
            b.add_duplex_link_geo(&name(r, 0), &name(r, pops_per_region / 2), capacity)
                .expect("chord endpoints exist");
        }
        // Two trunks to the next region.
        let next = (r + 1) % regions;
        b.add_duplex_link_geo(&name(r, 0), &name(next, 0), capacity)
            .expect("trunk endpoints exist");
        b.add_duplex_link_geo(
            &name(r, pops_per_region / 2),
            &name(next, pops_per_region / 2),
            capacity,
        )
        .expect("trunk endpoints exist");
    }
    // Express links between antipodal regions — only when the
    // antipodal offset lands on a non-adjacent region (offset >= 2,
    // i.e. regions >= 4); with 3 regions the "antipode" is the next
    // region over and the trunk loop already covers it.
    if regions / 2 >= 2 {
        for r in 0..regions / 2 {
            b.add_duplex_link_geo(&name(r, 0), &name(r + regions / 2, 0), capacity)
                .expect("express endpoints exist");
        }
    }
    b.build()
}

/// The "planetary" scale tier: the rung past [`hypergrowth`], shaped
/// for hierarchical (sharded) optimization. Like `hypergrowth`, `regions`
/// metro regions sit on a great circle, each a ring of `pops_per_region`
/// POPs with a cross-chord; regions are joined by two next-region
/// trunks, a skip-2 link, and an antipodal express. Unlike
/// `hypergrowth`, the capacity plan is **hierarchical**: intra-region
/// links carry `capacity` while every inter-region link (trunk, skip-2,
/// express) carries `4 × capacity` — the core is provisioned as a trunk
/// layer over local enclaves, so region boundaries are where shard
/// partitioning cuts. Node names are `pop{r}_{p}`; the region prefix
/// before `_` is what `fubar-core`'s region partitioner keys on. The
/// default tier (16 × 16 = 256 POPs, 328 duplex links) yields a
/// 65,536-aggregate full matrix with intra-POP pairs — the
/// `ShardedOptimizer` target where the flat oracle is no longer
/// feasible per-epoch.
///
/// # Panics
///
/// Panics when `regions < 3` or `pops_per_region < 3` (the rings
/// degenerate).
pub fn planetary(regions: usize, pops_per_region: usize, capacity: Bandwidth) -> Topology {
    assert!(regions >= 3, "planetary needs at least three regions");
    assert!(
        pops_per_region >= 3,
        "planetary needs at least three POPs per region"
    );
    let name = |r: usize, p: usize| format!("pop{r}_{p}");
    let trunk = Bandwidth::from_bps(capacity.bps() * 4.0);
    let mut b = TopologyBuilder::new(format!("planetary-{}", regions * pops_per_region));
    for r in 0..regions {
        // Region centers on a great circle, latitudes within the
        // temperate band so geo math stays well-conditioned.
        let theta = 2.0 * std::f64::consts::PI * r as f64 / regions as f64;
        let (clat, clon) = (35.0 * theta.sin(), 170.0 * theta.cos());
        for p in 0..pops_per_region {
            // Metro ring ~2° across around the region center.
            let phi = 2.0 * std::f64::consts::PI * p as f64 / pops_per_region as f64;
            let (lat, lon) = (clat + 2.0 * phi.sin(), clon + 2.0 * phi.cos());
            b.add_node_at(name(r, p), GeoPoint::new(lat, lon))
                .expect("planetary POP names are unique");
        }
    }
    for r in 0..regions {
        // Intra-region ring + one cross-chord (skipped for 3-POP
        // regions, where the "chord" would duplicate a ring edge).
        for p in 0..pops_per_region {
            b.add_duplex_link_geo(&name(r, p), &name(r, (p + 1) % pops_per_region), capacity)
                .expect("ring endpoints exist");
        }
        if pops_per_region >= 4 {
            b.add_duplex_link_geo(&name(r, 0), &name(r, pops_per_region / 2), capacity)
                .expect("chord endpoints exist");
        }
        // Two trunks to the next region.
        let next = (r + 1) % regions;
        b.add_duplex_link_geo(&name(r, 0), &name(next, 0), trunk)
            .expect("trunk endpoints exist");
        b.add_duplex_link_geo(
            &name(r, pops_per_region / 2),
            &name(next, pops_per_region / 2),
            trunk,
        )
        .expect("trunk endpoints exist");
        // Skip-2 links (through the second POP, spreading trunk degree
        // off POP 0) — only when the offset-2 region is neither the
        // adjacent one (regions >= 5) nor the antipode it would
        // duplicate at regions == 4.
        if regions >= 5 {
            b.add_duplex_link_geo(&name(r, 1), &name((r + 2) % regions, 1), trunk)
                .expect("skip endpoints exist");
        }
    }
    // Express links between antipodal regions — only when the antipodal
    // offset exceeds the skip-2 offset, otherwise the express would
    // duplicate a skip-2 (regions 4..6) or trunk (regions 3) link.
    if regions / 2 >= 3 {
        for r in 0..regions / 2 {
            b.add_duplex_link_geo(&name(r, 0), &name(r + regions / 2, 0), trunk)
                .expect("express endpoints exist");
        }
    }
    b.build()
}

/// The historical Abilene (Internet2) research backbone: 11 POPs, 14
/// duplex links, geo-derived delays. A well-known mid-size benchmark
/// topology.
pub fn abilene(capacity: Bandwidth) -> Topology {
    const POPS: [(&str, f64, f64); 11] = [
        ("Seattle", 47.61, -122.33),
        ("Sunnyvale", 37.37, -122.04),
        ("LosAngeles", 34.05, -118.24),
        ("Denver", 39.74, -104.99),
        ("KansasCity", 39.10, -94.58),
        ("Houston", 29.76, -95.37),
        ("Chicago", 41.88, -87.63),
        ("Indianapolis", 39.77, -86.16),
        ("Atlanta", 33.75, -84.39),
        ("WashingtonDC", 38.91, -77.04),
        ("NewYork", 40.71, -74.01),
    ];
    const LINKS: [(&str, &str); 14] = [
        ("Seattle", "Sunnyvale"),
        ("Seattle", "Denver"),
        ("Sunnyvale", "LosAngeles"),
        ("Sunnyvale", "Denver"),
        ("LosAngeles", "Houston"),
        ("Denver", "KansasCity"),
        ("KansasCity", "Houston"),
        ("KansasCity", "Indianapolis"),
        ("Houston", "Atlanta"),
        ("Chicago", "Indianapolis"),
        ("Chicago", "NewYork"),
        ("Indianapolis", "Atlanta"),
        ("Atlanta", "WashingtonDC"),
        ("WashingtonDC", "NewYork"),
    ];
    let mut b = TopologyBuilder::new("abilene");
    for (name, lat, lon) in POPS {
        b.add_node_at(name, GeoPoint::new(lat, lon)).unwrap();
    }
    for (a, z) in LINKS {
        b.add_duplex_link_geo(a, z, capacity).unwrap();
    }
    b.build()
}

fn numbered(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// A line of `n` nodes: `n0 - n1 - ... - n(n-1)`.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn line(n: usize, capacity: Bandwidth, hop_delay: Delay) -> Topology {
    assert!(n >= 2, "a line needs at least two nodes");
    let mut b = TopologyBuilder::new(format!("line-{n}"));
    for i in 0..n {
        b.add_node(numbered("n", i)).unwrap();
    }
    for i in 0..n - 1 {
        b.add_duplex_link(
            &numbered("n", i),
            &numbered("n", i + 1),
            capacity,
            hop_delay,
        )
        .unwrap();
    }
    b.build()
}

/// A ring of `n` nodes.
///
/// # Panics
///
/// Panics when `n < 3`.
pub fn ring(n: usize, capacity: Bandwidth, hop_delay: Delay) -> Topology {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut b = TopologyBuilder::new(format!("ring-{n}"));
    for i in 0..n {
        b.add_node(numbered("n", i)).unwrap();
    }
    for i in 0..n {
        b.add_duplex_link(
            &numbered("n", i),
            &numbered("n", (i + 1) % n),
            capacity,
            hop_delay,
        )
        .unwrap();
    }
    b.build()
}

/// A star: one `hub` connected to `leaves` leaf nodes.
///
/// # Panics
///
/// Panics when `leaves < 1`.
pub fn star(leaves: usize, capacity: Bandwidth, hop_delay: Delay) -> Topology {
    assert!(leaves >= 1, "a star needs at least one leaf");
    let mut b = TopologyBuilder::new(format!("star-{leaves}"));
    b.add_node("hub").unwrap();
    for i in 0..leaves {
        b.add_node(numbered("leaf", i)).unwrap();
        b.add_duplex_link("hub", &numbered("leaf", i), capacity, hop_delay)
            .unwrap();
    }
    b.build()
}

/// A `w × h` grid with nearest-neighbour links.
///
/// # Panics
///
/// Panics when either dimension is zero or the grid has fewer than 2 nodes.
pub fn grid(w: usize, h: usize, capacity: Bandwidth, hop_delay: Delay) -> Topology {
    assert!(w >= 1 && h >= 1 && w * h >= 2, "grid too small");
    let name = |x: usize, y: usize| format!("g{x}_{y}");
    let mut b = TopologyBuilder::new(format!("grid-{w}x{h}"));
    for y in 0..h {
        for x in 0..w {
            b.add_node(name(x, y)).unwrap();
        }
    }
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_duplex_link(&name(x, y), &name(x + 1, y), capacity, hop_delay)
                    .unwrap();
            }
            if y + 1 < h {
                b.add_duplex_link(&name(x, y), &name(x, y + 1), capacity, hop_delay)
                    .unwrap();
            }
        }
    }
    b.build()
}

/// A complete graph on `n` nodes.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn full_mesh(n: usize, capacity: Bandwidth, hop_delay: Delay) -> Topology {
    assert!(n >= 2, "a mesh needs at least two nodes");
    let mut b = TopologyBuilder::new(format!("mesh-{n}"));
    for i in 0..n {
        b.add_node(numbered("n", i)).unwrap();
    }
    for i in 0..n {
        for j in i + 1..n {
            b.add_duplex_link(&numbered("n", i), &numbered("n", j), capacity, hop_delay)
                .unwrap();
        }
    }
    b.build()
}

/// The classic dumbbell: `pairs` sources on the left, `pairs` sinks on the
/// right, one shared bottleneck in the middle. Edge links get `capacity`;
/// the bottleneck gets `bottleneck`. The canonical congestion-sharing test
/// fixture.
pub fn dumbbell(
    pairs: usize,
    capacity: Bandwidth,
    bottleneck: Bandwidth,
    hop_delay: Delay,
) -> Topology {
    assert!(pairs >= 1, "a dumbbell needs at least one pair");
    let mut b = TopologyBuilder::new(format!("dumbbell-{pairs}"));
    b.add_node("l-agg").unwrap();
    b.add_node("r-agg").unwrap();
    b.add_duplex_link("l-agg", "r-agg", bottleneck, hop_delay)
        .unwrap();
    for i in 0..pairs {
        b.add_node(numbered("src", i)).unwrap();
        b.add_node(numbered("dst", i)).unwrap();
        b.add_duplex_link(&numbered("src", i), "l-agg", capacity, hop_delay)
            .unwrap();
        b.add_duplex_link("r-agg", &numbered("dst", i), capacity, hop_delay)
            .unwrap();
    }
    b.build()
}

/// A seeded Waxman random geometric graph on the unit square (1000 km a
/// side): nodes placed uniformly, each pair linked with probability
/// `alpha * exp(-d / (beta * L))`. A spanning chain over the random node
/// order is added first so the result is always connected. Delays follow
/// link length at fiber speed.
pub fn waxman(n: usize, alpha: f64, beta: f64, capacity: Bandwidth, seed: u64) -> Topology {
    assert!(n >= 2, "waxman needs at least two nodes");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    assert!(beta > 0.0, "beta must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let side_km = 1000.0;
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * side_km, rng.gen::<f64>() * side_km))
        .collect();
    let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    let delay_of = |km: f64| Delay::from_secs(km.max(1.0) / crate::geo::C_FIBER_KM_S);

    let mut b = TopologyBuilder::new(format!("waxman-{n}-s{seed}"));
    for i in 0..n {
        b.add_node(numbered("w", i)).unwrap();
    }
    let mut connected = vec![vec![false; n]; n];
    // Spanning chain guarantees connectivity.
    for i in 0..n - 1 {
        let d = dist(positions[i], positions[i + 1]);
        b.add_duplex_link(
            &numbered("w", i),
            &numbered("w", i + 1),
            capacity,
            delay_of(d),
        )
        .unwrap();
        connected[i][i + 1] = true;
    }
    let diag = side_km * std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in i + 1..n {
            if connected[i][j] {
                continue;
            }
            let d = dist(positions[i], positions[j]);
            let p = alpha * (-d / (beta * diag)).exp();
            if rng.gen::<f64>() < p {
                b.add_duplex_link(&numbered("w", i), &numbered("w", j), capacity, delay_of(d))
                    .unwrap();
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Bandwidth = Bandwidth::ZERO; // placeholder, see cap()
    fn cap() -> Bandwidth {
        Bandwidth::from_mbps(100.0)
    }
    fn ms(v: f64) -> Delay {
        Delay::from_ms(v)
    }

    #[test]
    fn he_core_matches_paper_scale() {
        let _ = CAP;
        let t = he_core(cap());
        assert_eq!(t.node_count(), 31, "paper: 31 POP nodes");
        assert_eq!(t.duplex_count(), 56, "paper: 56 inter-POP links");
        assert_eq!(t.link_count(), 112);
        assert!(t.is_connected());
    }

    #[test]
    fn he_core_delays_are_plausible() {
        let t = he_core(cap());
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for l in t.links() {
            let d = t.delay(l).ms();
            min = min.min(d);
            max = max.max(d);
        }
        // Fremont-SanJose is tens of km; transpacific is tens of ms.
        assert!(
            min < 1.0,
            "shortest HE link should be sub-millisecond, got {min}ms"
        );
        assert!(
            (30.0..80.0).contains(&max),
            "longest HE link should be a transpacific trunk, got {max}ms"
        );
    }

    #[test]
    fn he_core_adjacency_has_no_duplicates() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for (a, z) in HE_LINKS {
            let key = if a < z { (a, z) } else { (z, a) };
            assert!(seen.insert(key), "duplicate HE link {a}-{z}");
        }
    }

    #[test]
    fn hypergrowth_shape_and_delays() {
        let t = hypergrowth(8, 8, cap());
        assert_eq!(t.node_count(), 64, "8 regions x 8 POPs");
        // 8 rings x 8 + 8 chords + 16 trunks + 4 express = 92 duplex.
        assert_eq!(t.duplex_count(), 92);
        assert!(t.is_connected());
        let mut max_ms: f64 = 0.0;
        for l in t.links() {
            max_ms = max_ms.max(t.delay(l).ms());
        }
        assert!(
            (10.0..200.0).contains(&max_ms),
            "longest hypergrowth link should be a long-haul trunk, got {max_ms}ms"
        );
        // Deterministic: same call, same graph.
        let t2 = hypergrowth(8, 8, cap());
        assert_eq!(t.link_count(), t2.link_count());
        for l in t.links() {
            assert_eq!(t.delay(l), t2.delay(l));
        }
    }

    #[test]
    #[should_panic(expected = "at least three regions")]
    fn tiny_hypergrowth_rejected() {
        hypergrowth(2, 8, cap());
    }

    #[test]
    fn three_region_hypergrowth_skips_degenerate_express_links() {
        // With 3 regions the antipodal offset is 1 (covered by the
        // trunk loop) and a 3-POP ring's chord would duplicate a ring
        // edge — both degenerate extras must be skipped, leaving every
        // adjacency unique.
        let t = hypergrowth(3, 3, cap());
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for l in t.links() {
            let link = t.graph().link(l);
            assert!(
                seen.insert((link.src, link.dst)),
                "duplicate directed link {:?}->{:?}",
                link.src,
                link.dst
            );
        }
        assert!(t.is_connected());
    }

    #[test]
    fn planetary_shape_and_hierarchical_capacities() {
        let t = planetary(16, 16, cap());
        assert_eq!(t.node_count(), 256, "16 regions x 16 POPs");
        // 16 rings x 16 + 16 chords + 32 trunks + 16 skip-2 + 8 express
        // = 328 duplex.
        assert_eq!(t.duplex_count(), 328);
        assert!(t.is_connected());
        // Hierarchical capacity plan: inter-region links carry 4x.
        let intra = t
            .graph()
            .find_link(t.node("pop0_0").unwrap(), t.node("pop0_1").unwrap())
            .unwrap();
        let inter = t
            .graph()
            .find_link(t.node("pop0_0").unwrap(), t.node("pop1_0").unwrap())
            .unwrap();
        assert_eq!(t.capacity(intra), cap());
        assert_eq!(t.capacity(inter).bps(), cap().bps() * 4.0);
        // Deterministic: same call, same graph.
        let t2 = planetary(16, 16, cap());
        assert_eq!(t.link_count(), t2.link_count());
        for l in t.links() {
            assert_eq!(t.delay(l), t2.delay(l));
            assert_eq!(t.capacity(l), t2.capacity(l));
        }
    }

    #[test]
    fn small_planetary_tiers_have_unique_adjacencies() {
        // The degenerate-extras gating (no chord at 3 POPs, no skip-2
        // under 5 regions, no express under 6) must leave every
        // adjacency unique at every small size.
        use std::collections::BTreeSet;
        for (regions, pops) in [(3, 3), (4, 4), (5, 3), (6, 4), (7, 5)] {
            let t = planetary(regions, pops, cap());
            let mut seen = BTreeSet::new();
            for l in t.links() {
                let link = t.graph().link(l);
                assert!(
                    seen.insert((link.src, link.dst)),
                    "planetary({regions},{pops}): duplicate directed link {:?}->{:?}",
                    link.src,
                    link.dst
                );
            }
            assert!(t.is_connected(), "planetary({regions},{pops}) disconnected");
        }
    }

    #[test]
    #[should_panic(expected = "at least three regions")]
    fn tiny_planetary_rejected() {
        planetary(2, 16, cap());
    }

    #[test]
    fn abilene_shape() {
        let t = abilene(cap());
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.duplex_count(), 14);
        assert!(t.is_connected());
    }

    #[test]
    fn line_ring_star_shapes() {
        let l = line(5, cap(), ms(1.0));
        assert_eq!(l.node_count(), 5);
        assert_eq!(l.duplex_count(), 4);
        assert!(l.is_connected());

        let r = ring(6, cap(), ms(1.0));
        assert_eq!(r.duplex_count(), 6);
        assert!(r.is_connected());

        let s = star(4, cap(), ms(1.0));
        assert_eq!(s.node_count(), 5);
        assert_eq!(s.duplex_count(), 4);
        assert!(s.is_connected());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, cap(), ms(1.0));
        assert_eq!(g.node_count(), 12);
        // 3x4 grid: horizontal 2*4=8, vertical 3*3=9 -> 17.
        assert_eq!(g.duplex_count(), 17);
        assert!(g.is_connected());
    }

    #[test]
    fn full_mesh_shape() {
        let m = full_mesh(5, cap(), ms(1.0));
        assert_eq!(m.duplex_count(), 10);
        assert!(m.is_connected());
    }

    #[test]
    fn dumbbell_shape_and_bottleneck() {
        let d = dumbbell(3, cap(), Bandwidth::from_mbps(10.0), ms(1.0));
        assert_eq!(d.node_count(), 8);
        assert_eq!(d.duplex_count(), 7);
        assert!(d.is_connected());
        let mid = d
            .graph()
            .find_link(d.node("l-agg").unwrap(), d.node("r-agg").unwrap())
            .unwrap();
        assert_eq!(d.capacity(mid), Bandwidth::from_mbps(10.0));
    }

    #[test]
    fn waxman_is_connected_and_seed_deterministic() {
        let a = waxman(20, 0.6, 0.3, cap(), 7);
        let b = waxman(20, 0.6, 0.3, cap(), 7);
        assert!(a.is_connected());
        assert_eq!(a.link_count(), b.link_count());
        for l in a.links() {
            assert_eq!(a.delay(l), b.delay(l));
        }
        let c = waxman(20, 0.6, 0.3, cap(), 8);
        // Different seed should (overwhelmingly) give a different graph.
        assert!(a.link_count() != c.link_count() || a.links().any(|l| a.delay(l) != c.delay(l)));
    }

    #[test]
    fn waxman_alpha_zero_is_just_the_chain() {
        let t = waxman(10, 0.0, 0.3, cap(), 1);
        assert_eq!(t.duplex_count(), 9);
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        ring(2, cap(), ms(1.0));
    }
}
