//! Geographic helpers: great-circle distances and fiber propagation delay.
//!
//! The paper's Hurricane Electric topology comes with real-world
//! propagation delays. Our synthesized stand-in derives them from POP
//! coordinates: great-circle distance, inflated by a route-stretch factor
//! (fiber rarely follows the geodesic), divided by the speed of light in
//! fiber (~2/3 of c).

use crate::units::Delay;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Speed of light in vacuum, km/s.
pub const C_VACUUM_KM_S: f64 = 299_792.458;

/// Speed of light in optical fiber (refractive index ≈ 1.468), km/s.
pub const C_FIBER_KM_S: f64 = C_VACUUM_KM_S / 1.468;

/// Typical ratio of fiber route length to great-circle distance.
pub const DEFAULT_ROUTE_STRETCH: f64 = 1.4;

/// A point on the globe, degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating the coordinate ranges.
    ///
    /// # Panics
    ///
    /// Panics when latitude is outside [-90, 90] or longitude outside
    /// [-180, 180].
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way fiber propagation delay to `other`, using the default route
    /// stretch.
    pub fn fiber_delay(&self, other: &GeoPoint) -> Delay {
        self.fiber_delay_with_stretch(other, DEFAULT_ROUTE_STRETCH)
    }

    /// One-way fiber propagation delay with an explicit route-stretch
    /// factor (≥ 1).
    pub fn fiber_delay_with_stretch(&self, other: &GeoPoint, stretch: f64) -> Delay {
        assert!(stretch >= 1.0, "route stretch must be >= 1, got {stretch}");
        let km = self.distance_km(other) * stretch;
        Delay::from_secs(km / C_FIBER_KM_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NYC: GeoPoint = GeoPoint {
        lat: 40.71,
        lon: -74.01,
    };
    const LONDON: GeoPoint = GeoPoint {
        lat: 51.51,
        lon: -0.13,
    };

    #[test]
    fn nyc_london_distance_is_about_5570km() {
        let d = NYC.distance_km(&LONDON);
        assert!((5540.0..5600.0).contains(&d), "got {d}");
        // Symmetric.
        assert!((d - LONDON.distance_km(&NYC)).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(NYC.distance_km(&NYC), 0.0);
        assert_eq!(NYC.fiber_delay(&NYC), Delay::ZERO);
    }

    #[test]
    fn nyc_london_fiber_delay_is_tens_of_ms() {
        // ~5570 km * 1.4 / ~204k km/s ≈ 38 ms one-way.
        let d = NYC.fiber_delay(&LONDON);
        assert!(
            (30.0..50.0).contains(&d.ms()),
            "one-way NYC-London delay {d} outside plausible band"
        );
    }

    #[test]
    fn stretch_scales_delay_linearly() {
        let base = NYC.fiber_delay_with_stretch(&LONDON, 1.0);
        let doubled = NYC.fiber_delay_with_stretch(&LONDON, 2.0);
        assert!((doubled.secs() - 2.0 * base.secs()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn bad_latitude_rejected() {
        GeoPoint::new(95.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "route stretch")]
    fn bad_stretch_rejected() {
        NYC.fiber_delay_with_stretch(&LONDON, 0.5);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }
}
