//! # fubar-topology
//!
//! The physical-network substrate for the FUBAR reproduction: nodes
//! (POPs), capacitated duplex links with one-way propagation delays,
//! strong physical-unit types, topology generators, and a diffable text
//! format.
//!
//! The paper evaluates FUBAR on Hurricane Electric's core network — 31
//! POPs, 56 inter-POP links (§3). That exact 2014 adjacency is not
//! public, so [`generators::he_core`] provides a synthesized stand-in
//! with identical scale and geo-realistic delays (see DESIGN.md for the
//! substitution note).
//!
//! ```
//! use fubar_topology::{generators, Bandwidth};
//!
//! let topo = generators::he_core(Bandwidth::from_mbps(100.0));
//! assert_eq!(topo.node_count(), 31);
//! assert_eq!(topo.duplex_count(), 56);
//! assert!(topo.is_connected());
//! ```
#![forbid(unsafe_code)]

pub mod catalog;
pub mod format;
pub mod generators;
mod geo;
mod topology;
mod units;

pub use geo::{GeoPoint, C_FIBER_KM_S, DEFAULT_ROUTE_STRETCH, EARTH_RADIUS_KM};
pub use topology::{Topology, TopologyBuilder, TopologyError};
pub use units::{Bandwidth, Delay};

// Re-export the graph identifiers users of this crate constantly need.
pub use fubar_graph::{LinkId, NodeId};
