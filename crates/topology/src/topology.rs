//! The [`Topology`] type: a named, capacitated, delay-weighted network.
//!
//! A topology wraps a [`DiGraph`] (whose link costs are one-way
//! propagation delays in seconds) and adds what the routing layer needs:
//! human-readable node names, optional POP coordinates, per-link capacity,
//! and the pairing between the two directions of a duplex link.
//!
//! Backbone links are almost always duplex; [`TopologyBuilder::add_duplex_link`]
//! creates the two directed links in one call and records their pairing so
//! analyses can reason about "the Fremont–Denver link" as one object when
//! they want to.

use crate::geo::GeoPoint;
use crate::units::{Bandwidth, Delay};
use fubar_graph::{DiGraph, LinkId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Errors arising while building or editing a topology.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyError {
    /// A node with this name already exists.
    DuplicateNode(String),
    /// The node name is empty or contains characters the text format
    /// cannot represent (whitespace splits tokens, `#` starts a comment).
    InvalidName(String),
    /// No node with this name exists.
    UnknownNode(String),
    /// Links from a node to itself are not meaningful in a backbone.
    SelfLoop(String),
    /// Geo-derived delay was requested but an endpoint has no coordinates.
    MissingCoordinates(String),
    /// Link capacity must be strictly positive.
    ZeroCapacity,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateNode(n) => write!(f, "duplicate node name {n:?}"),
            TopologyError::InvalidName(n) => write!(
                f,
                "invalid node name {n:?}: must be non-empty, without whitespace or '#'"
            ),
            TopologyError::UnknownNode(n) => write!(f, "unknown node name {n:?}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n:?}"),
            TopologyError::MissingCoordinates(n) => {
                write!(f, "node {n:?} has no coordinates for geo-derived delay")
            }
            TopologyError::ZeroCapacity => write!(f, "link capacity must be positive"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incrementally builds a [`Topology`].
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    graph: DiGraph,
    node_names: Vec<String>,
    node_geo: Vec<Option<GeoPoint>>,
    // lint:allow(hash-iteration): name→id lookups only, never iterated
    by_name: HashMap<String, NodeId>,
    capacities: Vec<Bandwidth>,
    reverse: Vec<Option<LinkId>>,
}

impl TopologyBuilder {
    /// Starts a new topology with the given display name.
    ///
    /// # Panics
    ///
    /// Panics when the name cannot survive the `.topo` text format
    /// (empty, whitespace, or `#`) — the same constraint node names get
    /// via [`TopologyError::InvalidName`], enforced here as an assert
    /// because every call site uses a literal or generated name.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.chars().any(|c| c.is_whitespace() || c == '#'),
            "invalid topology name {name:?}: must be non-empty, without whitespace or '#' \
             (it would serialize into a `.topo` line `parse` cannot read back)"
        );
        TopologyBuilder {
            name,
            ..Default::default()
        }
    }

    /// Adds a node without coordinates.
    pub fn add_node(&mut self, name: impl Into<String>) -> Result<NodeId, TopologyError> {
        self.add_node_inner(name.into(), None)
    }

    /// Adds a node at a geographic location, enabling geo-derived delays.
    pub fn add_node_at(
        &mut self,
        name: impl Into<String>,
        at: GeoPoint,
    ) -> Result<NodeId, TopologyError> {
        self.add_node_inner(name.into(), Some(at))
    }

    fn add_node_inner(
        &mut self,
        name: String,
        at: Option<GeoPoint>,
    ) -> Result<NodeId, TopologyError> {
        // Names must survive the `.topo` text format: whitespace would
        // split one token into several and `#` starts a comment, so a
        // builder that accepted them would serialize files `parse` can
        // never read back.
        if name.is_empty() || name.chars().any(|c| c.is_whitespace() || c == '#') {
            return Err(TopologyError::InvalidName(name));
        }
        if self.by_name.contains_key(&name) {
            return Err(TopologyError::DuplicateNode(name));
        }
        let id = self.graph.add_node();
        self.by_name.insert(name.clone(), id);
        self.node_names.push(name);
        self.node_geo.push(at);
        Ok(id)
    }

    /// Node id by name.
    pub fn node(&self, name: &str) -> Result<NodeId, TopologyError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TopologyError::UnknownNode(name.to_string()))
    }

    /// Adds a duplex link between two named nodes with explicit capacity
    /// (per direction) and one-way delay. Returns the pair of directed
    /// link ids (a→b, b→a).
    pub fn add_duplex_link(
        &mut self,
        a: &str,
        b: &str,
        capacity: Bandwidth,
        delay: Delay,
    ) -> Result<(LinkId, LinkId), TopologyError> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        if na == nb {
            return Err(TopologyError::SelfLoop(a.to_string()));
        }
        if capacity <= Bandwidth::ZERO {
            return Err(TopologyError::ZeroCapacity);
        }
        let fwd = self.graph.add_link(na, nb, delay.secs());
        let bwd = self.graph.add_link(nb, na, delay.secs());
        self.capacities.push(capacity);
        self.capacities.push(capacity);
        self.reverse.push(Some(bwd));
        self.reverse.push(Some(fwd));
        Ok((fwd, bwd))
    }

    /// Adds a duplex link whose delay is derived from the endpoints'
    /// coordinates (fiber speed, default route stretch).
    pub fn add_duplex_link_geo(
        &mut self,
        a: &str,
        b: &str,
        capacity: Bandwidth,
    ) -> Result<(LinkId, LinkId), TopologyError> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        let ga = self.node_geo[na.index()]
            .ok_or_else(|| TopologyError::MissingCoordinates(a.to_string()))?;
        let gb = self.node_geo[nb.index()]
            .ok_or_else(|| TopologyError::MissingCoordinates(b.to_string()))?;
        self.add_duplex_link(a, b, capacity, ga.fiber_delay(&gb))
    }

    /// Adds a one-directional link (rare in practice; used by tests and
    /// asymmetric what-if scenarios).
    pub fn add_simplex_link(
        &mut self,
        from: &str,
        to: &str,
        capacity: Bandwidth,
        delay: Delay,
    ) -> Result<LinkId, TopologyError> {
        let na = self.node(from)?;
        let nb = self.node(to)?;
        if na == nb {
            return Err(TopologyError::SelfLoop(from.to_string()));
        }
        if capacity <= Bandwidth::ZERO {
            return Err(TopologyError::ZeroCapacity);
        }
        let id = self.graph.add_link(na, nb, delay.secs());
        self.capacities.push(capacity);
        self.reverse.push(None);
        Ok(id)
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            name: self.name,
            graph: self.graph,
            node_names: self.node_names,
            node_geo: self.node_geo,
            by_name: self.by_name,
            capacities: self.capacities,
            reverse: self.reverse,
        }
    }
}

/// An immutable-by-default network topology (capacities may be edited for
/// what-if analyses; structure may not — rebuild instead).
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    graph: DiGraph,
    node_names: Vec<String>,
    node_geo: Vec<Option<GeoPoint>>,
    // lint:allow(hash-iteration): name→id lookups only, never iterated
    by_name: HashMap<String, NodeId>,
    capacities: Vec<Bandwidth>,
    reverse: Vec<Option<LinkId>>,
}

/// Structural equality, bitwise on every float: names, coordinates,
/// capacities, delays, and the full directed-link structure including
/// duplex pairing. This is the equality the `serialize ∘ parse`
/// round-trip invariant is stated in — `-0.0 != 0.0` here, unlike plain
/// `f64` comparison, so "equal" really means "same bits".
impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        let geo_bits = |g: Option<GeoPoint>| g.map(|p| (p.lat.to_bits(), p.lon.to_bits()));
        self.name == other.name
            && self.node_names == other.node_names
            && self.node_geo.len() == other.node_geo.len()
            && self
                .node_geo
                .iter()
                .zip(&other.node_geo)
                .all(|(&a, &b)| geo_bits(a) == geo_bits(b))
            && self.capacities.len() == other.capacities.len()
            && self
                .capacities
                .iter()
                .zip(&other.capacities)
                .all(|(a, b)| a.bps().to_bits() == b.bps().to_bits())
            && self.reverse == other.reverse
            && self.graph.link_count() == other.graph.link_count()
            && self.graph.node_count() == other.graph.node_count()
            && self.links().all(|l| {
                let (a, b) = (self.graph.link(l), other.graph.link(l));
                a.src == b.src && a.dst == b.dst && a.cost.to_bits() == b.cost.to_bits()
            })
    }
}

impl Topology {
    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying delay-weighted graph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of nodes (POPs).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of *directed* links.
    pub fn link_count(&self) -> usize {
        self.graph.link_count()
    }

    /// Number of duplex (bidirectional) links; simplex links count 1 each.
    pub fn duplex_count(&self) -> usize {
        let paired = self.reverse.iter().filter(|r| r.is_some()).count();
        let simplex = self.reverse.len() - paired;
        paired / 2 + simplex
    }

    /// Node id by name.
    pub fn node(&self, name: &str) -> Result<NodeId, TopologyError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TopologyError::UnknownNode(name.to_string()))
    }

    /// Node name by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this topology.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Node coordinates, if known.
    pub fn node_geo(&self, id: NodeId) -> Option<GeoPoint> {
        self.node_geo[id.index()]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        self.graph.nodes()
    }

    /// All directed link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> {
        (0..self.link_count() as u32).map(LinkId)
    }

    /// Capacity of a directed link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a link of this topology.
    #[inline]
    pub fn capacity(&self, id: LinkId) -> Bandwidth {
        self.capacities[id.index()]
    }

    /// One-way propagation delay of a directed link.
    #[inline]
    pub fn delay(&self, id: LinkId) -> Delay {
        Delay::from_secs(self.graph.link(id).cost)
    }

    /// The opposite direction of a duplex link; `None` for simplex links.
    pub fn reverse_of(&self, id: LinkId) -> Option<LinkId> {
        self.reverse[id.index()]
    }

    /// Overrides the capacity of one directed link (what-if analyses,
    /// partial upgrades).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    pub fn set_capacity(&mut self, id: LinkId, capacity: Bandwidth) {
        assert!(capacity > Bandwidth::ZERO, "link capacity must be positive");
        self.capacities[id.index()] = capacity;
    }

    /// Overrides the one-way delay of one directed link. Used by what-if
    /// analyses and by the SDN substrate to cost failed links out of the
    /// routing graph.
    pub fn set_delay(&mut self, id: LinkId, delay: Delay) {
        self.graph.set_cost(id, delay.secs());
    }

    /// Sets every link's capacity to the same value — how the paper's
    /// evaluation switches between the provisioned (100 Mb/s) and
    /// underprovisioned (75 Mb/s) cases.
    pub fn set_uniform_capacity(&mut self, capacity: Bandwidth) {
        assert!(capacity > Bandwidth::ZERO, "link capacity must be positive");
        self.capacities.fill(capacity);
    }

    /// Sum of all directed links' capacities.
    pub fn total_capacity(&self) -> Bandwidth {
        self.capacities.iter().copied().sum()
    }

    /// `"src->dst"` with node names, for diagnostics.
    pub fn link_label(&self, id: LinkId) -> String {
        let l = self.graph.link(id);
        format!("{}->{}", self.node_name(l.src), self.node_name(l.dst))
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.graph.is_strongly_connected()
    }

    /// Rebuilds this topology without the given *duplex* links (each id
    /// may be either direction; its pair is removed too). Used to simulate
    /// fiber cuts.
    pub fn without_links(&self, cut: &[LinkId]) -> Topology {
        let mut drop = vec![false; self.link_count()];
        for &l in cut {
            drop[l.index()] = true;
            if let Some(r) = self.reverse[l.index()] {
                drop[r.index()] = true;
            }
        }
        let mut b = TopologyBuilder::new(self.name.clone());
        for id in self.nodes() {
            let name = self.node_name(id).to_string();
            match self.node_geo[id.index()] {
                Some(g) => b.add_node_at(name, g).expect("names were unique"),
                None => b.add_node(name).expect("names were unique"),
            };
        }
        let mut seen = vec![false; self.link_count()];
        for id in self.links() {
            if drop[id.index()] || seen[id.index()] {
                continue;
            }
            let l = self.graph.link(id);
            let src = self.node_name(l.src);
            let dst = self.node_name(l.dst);
            match self.reverse[id.index()] {
                Some(r) => {
                    seen[r.index()] = true;
                    b.add_duplex_link(src, dst, self.capacities[id.index()], self.delay(id))
                        .expect("copied link must be valid");
                }
                None => {
                    b.add_simplex_link(src, dst, self.capacities[id.index()], self.delay(id))
                        .expect("copied link must be valid");
                }
            }
        }
        b.build()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} nodes, {} duplex links ({} directed), total capacity {}",
            self.name,
            self.node_count(),
            self.duplex_count(),
            self.link_count(),
            self.total_capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new("triangle");
        for n in ["a", "b", "c"] {
            b.add_node(n).unwrap();
        }
        b.add_duplex_link("a", "b", Bandwidth::from_mbps(10.0), Delay::from_ms(1.0))
            .unwrap();
        b.add_duplex_link("b", "c", Bandwidth::from_mbps(10.0), Delay::from_ms(2.0))
            .unwrap();
        b.add_duplex_link("a", "c", Bandwidth::from_mbps(10.0), Delay::from_ms(5.0))
            .unwrap();
        b.build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.duplex_count(), 3);
        assert!(t.is_connected());
        assert_eq!(t.total_capacity(), Bandwidth::from_mbps(60.0));
    }

    #[test]
    fn duplex_links_are_paired_and_symmetric() {
        let t = triangle();
        let ab = t
            .graph()
            .find_link(t.node("a").unwrap(), t.node("b").unwrap())
            .unwrap();
        let ba = t.reverse_of(ab).unwrap();
        assert_eq!(t.reverse_of(ba), Some(ab));
        assert_eq!(t.delay(ab), t.delay(ba));
        assert_eq!(t.capacity(ab), t.capacity(ba));
        assert_eq!(t.graph().link(ba).src, t.node("b").unwrap());
    }

    #[test]
    fn name_lookup_and_labels() {
        let t = triangle();
        let ab = t
            .graph()
            .find_link(t.node("a").unwrap(), t.node("b").unwrap())
            .unwrap();
        assert_eq!(t.link_label(ab), "a->b");
        assert_eq!(t.node_name(t.node("c").unwrap()), "c");
        assert!(matches!(t.node("zzz"), Err(TopologyError::UnknownNode(_))));
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("x").unwrap();
        assert_eq!(
            b.add_node("x").unwrap_err(),
            TopologyError::DuplicateNode("x".into())
        );
    }

    #[test]
    fn unrepresentable_node_names_rejected() {
        // Regression: these used to be accepted, and `format::serialize`
        // then emitted `.topo` lines `format::parse` rejects ("a b"
        // splits into two tokens) or mis-tokenizes ("x#y" truncates at
        // the comment marker).
        let mut b = TopologyBuilder::new("t");
        for bad in ["", "a b", "x#y", "tab\tname", "trailing ", "line\nbreak"] {
            assert_eq!(
                b.add_node(bad).unwrap_err(),
                TopologyError::InvalidName(bad.into()),
                "{bad:?} must be rejected"
            );
            assert_eq!(
                b.add_node_at(bad, GeoPoint::new(0.0, 0.0)).unwrap_err(),
                TopologyError::InvalidName(bad.into()),
                "{bad:?} must be rejected with coordinates too"
            );
        }
        // Ordinary names still work, including punctuation the format
        // tokenizer is fine with.
        for ok in ["a", "NewYork", "pop0_1", "fra-1", "n.y.c"] {
            b.add_node(ok).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "invalid topology name")]
    fn unrepresentable_topology_name_rejected() {
        TopologyBuilder::new("euro core");
    }

    #[test]
    #[should_panic(expected = "invalid topology name")]
    fn empty_topology_name_rejected() {
        TopologyBuilder::new("");
    }

    #[test]
    fn structural_equality_is_bitwise() {
        let t = triangle();
        assert_eq!(t, t.clone());
        let mut other = t.clone();
        other.set_capacity(LinkId(0), Bandwidth::from_mbps(11.0));
        assert_ne!(t, other);
        let mut other = t.clone();
        other.set_delay(LinkId(2), Delay::from_ms(9.0));
        assert_ne!(t, other);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("x").unwrap();
        assert_eq!(
            b.add_duplex_link("x", "x", Bandwidth::from_mbps(1.0), Delay::ZERO)
                .unwrap_err(),
            TopologyError::SelfLoop("x".into())
        );
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("x").unwrap();
        b.add_node("y").unwrap();
        assert_eq!(
            b.add_duplex_link("x", "y", Bandwidth::ZERO, Delay::ZERO)
                .unwrap_err(),
            TopologyError::ZeroCapacity
        );
    }

    #[test]
    fn geo_link_requires_coordinates() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("x").unwrap();
        b.add_node_at("y", GeoPoint::new(0.0, 0.0)).unwrap();
        assert!(matches!(
            b.add_duplex_link_geo("x", "y", Bandwidth::from_mbps(1.0)),
            Err(TopologyError::MissingCoordinates(_))
        ));
    }

    #[test]
    fn geo_link_delay_matches_fiber_formula() {
        let mut b = TopologyBuilder::new("t");
        let p = GeoPoint::new(40.71, -74.01);
        let q = GeoPoint::new(51.51, -0.13);
        b.add_node_at("nyc", p).unwrap();
        b.add_node_at("lon", q).unwrap();
        let (fwd, _) = b
            .add_duplex_link_geo("nyc", "lon", Bandwidth::from_mbps(1.0))
            .unwrap();
        let t = b.build();
        assert!((t.delay(fwd).secs() - p.fiber_delay(&q).secs()).abs() < 1e-12);
    }

    #[test]
    fn uniform_capacity_override() {
        let mut t = triangle();
        t.set_uniform_capacity(Bandwidth::from_mbps(75.0));
        for l in t.links() {
            assert_eq!(t.capacity(l), Bandwidth::from_mbps(75.0));
        }
    }

    #[test]
    fn single_capacity_override() {
        let mut t = triangle();
        let l = LinkId(0);
        t.set_capacity(l, Bandwidth::from_gbps(1.0));
        assert_eq!(t.capacity(l), Bandwidth::from_gbps(1.0));
        assert_eq!(t.capacity(LinkId(1)), Bandwidth::from_mbps(10.0));
    }

    #[test]
    fn without_links_cuts_both_directions() {
        let t = triangle();
        let ab = t
            .graph()
            .find_link(t.node("a").unwrap(), t.node("b").unwrap())
            .unwrap();
        let cut = t.without_links(&[ab]);
        assert_eq!(cut.duplex_count(), 2);
        assert_eq!(cut.node_count(), 3);
        assert!(
            cut.is_connected(),
            "triangle minus one edge is still connected"
        );
        assert!(cut
            .graph()
            .find_link(cut.node("a").unwrap(), cut.node("b").unwrap())
            .is_none());
        assert!(cut
            .graph()
            .find_link(cut.node("b").unwrap(), cut.node("a").unwrap())
            .is_none());
    }

    #[test]
    fn simplex_links_have_no_reverse() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("x").unwrap();
        b.add_node("y").unwrap();
        let l = b
            .add_simplex_link("x", "y", Bandwidth::from_mbps(1.0), Delay::from_ms(1.0))
            .unwrap();
        let t = b.build();
        assert_eq!(t.reverse_of(l), None);
        assert_eq!(t.duplex_count(), 1);
        assert!(!t.is_connected());
    }

    #[test]
    fn summary_mentions_the_name() {
        let t = triangle();
        assert!(t.summary().starts_with("triangle:"));
    }
}
