//! Physical quantities used throughout the FUBAR workspace.
//!
//! [`Bandwidth`] and [`Delay`] are thin `f64` newtypes (bits per second
//! and seconds respectively). They exist to make APIs self-describing and
//! to stop the classic unit bugs (kb/s vs Mb/s, ms vs s) at compile time,
//! while staying `Copy` and arithmetic-friendly so the flow model's inner
//! loops pay nothing for them.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative data rate, stored in bits per second.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From bits per second.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps >= 0.0 && bps.is_finite(),
            "bandwidth must be finite and non-negative, got {bps}"
        );
        Bandwidth(bps)
    }

    /// From kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// From megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// From gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// In bits per second.
    #[inline]
    pub fn bps(self) -> f64 {
        self.0
    }

    /// In kilobits per second.
    #[inline]
    pub fn kbps(self) -> f64 {
        self.0 / 1e3
    }

    /// In megabits per second.
    #[inline]
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// In gigabits per second.
    #[inline]
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// `self - other`, clamped at zero (capacity headroom can't go
    /// negative through rounding).
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - other.0).max(0.0))
    }

    /// The smaller of the two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of the two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Dimensionless ratio `self / other`; `other` must be non-zero.
    pub fn ratio(self, other: Bandwidth) -> f64 {
        assert!(other.0 > 0.0, "division by zero bandwidth");
        self.0 / other.0
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    /// # Panics
    /// Panics (in debug builds) if the result would be negative; use
    /// [`Bandwidth::saturating_sub`] when headroom may round below zero.
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        debug_assert!(
            self.0 >= rhs.0 - 1e-6,
            "bandwidth subtraction went negative: {} - {}",
            self.0,
            rhs.0
        );
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1e9 {
            write!(f, "{:.3}Gbps", bps / 1e9)
        } else if bps >= 1e6 {
            write!(f, "{:.3}Mbps", bps / 1e6)
        } else if bps >= 1e3 {
            write!(f, "{:.3}kbps", bps / 1e3)
        } else {
            write!(f, "{bps:.3}bps")
        }
    }
}

/// A non-negative time interval, stored in seconds.
///
/// Used for propagation delays, RTTs, and the delay axis of utility
/// functions.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Delay(f64);

impl Delay {
    /// Zero delay.
    pub const ZERO: Delay = Delay(0.0);

    /// From seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "delay must be finite and non-negative, got {secs}"
        );
        Delay(secs)
    }

    /// From milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// From microseconds.
    pub fn from_us(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// In seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// In milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }

    /// In microseconds.
    #[inline]
    pub fn us(self) -> f64 {
        self.0 * 1e6
    }

    /// The smaller of the two delays.
    pub fn min(self, other: Delay) -> Delay {
        Delay(self.0.min(other.0))
    }

    /// The larger of the two delays.
    pub fn max(self, other: Delay) -> Delay {
        Delay(self.0.max(other.0))
    }
}

impl Add for Delay {
    type Output = Delay;
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl AddAssign for Delay {
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.0;
    }
}

impl Sub for Delay {
    type Output = Delay;
    fn sub(self, rhs: Delay) -> Delay {
        debug_assert!(self.0 >= rhs.0 - 1e-12);
        Delay((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Delay {
    type Output = Delay;
    fn mul(self, rhs: f64) -> Delay {
        Delay(self.0 * rhs)
    }
}

impl Div<f64> for Delay {
    type Output = Delay;
    fn div(self, rhs: f64) -> Delay {
        Delay(self.0 / rhs)
    }
}

impl Sum for Delay {
    fn sum<I: Iterator<Item = Delay>>(iter: I) -> Delay {
        Delay(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

/// Parses strings like `100Mbps`, `50kbps`, `1.5Gbps`, `250bps`.
impl std::str::FromStr for Bandwidth {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num, mult) = if let Some(p) = s.strip_suffix("Gbps") {
            (p, 1e9)
        } else if let Some(p) = s.strip_suffix("Mbps") {
            (p, 1e6)
        } else if let Some(p) = s.strip_suffix("kbps") {
            (p, 1e3)
        } else if let Some(p) = s.strip_suffix("bps") {
            (p, 1.0)
        } else {
            return Err(format!("unknown bandwidth unit in {s:?}"));
        };
        let v: f64 = num
            .trim()
            .parse()
            .map_err(|e| format!("bad bandwidth number in {s:?}: {e}"))?;
        // Check the *scaled* value: a finite mantissa times 1e9 can
        // still overflow to infinity, which `from_bps` rejects by panic.
        let bps = v * mult;
        if bps < 0.0 || !bps.is_finite() {
            return Err(format!("bandwidth must be non-negative and finite: {s:?}"));
        }
        Ok(Bandwidth::from_bps(bps))
    }
}

/// Parses strings like `10ms`, `1.5s`, `250us`.
impl std::str::FromStr for Delay {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num, mult) = if let Some(p) = s.strip_suffix("ms") {
            (p, 1e-3)
        } else if let Some(p) = s.strip_suffix("us") {
            (p, 1e-6)
        } else if let Some(p) = s.strip_suffix('s') {
            (p, 1.0)
        } else {
            return Err(format!("unknown delay unit in {s:?}"));
        };
        let v: f64 = num
            .trim()
            .parse()
            .map_err(|e| format!("bad delay number in {s:?}: {e}"))?;
        if v < 0.0 || !v.is_finite() {
            return Err(format!("delay must be non-negative: {s:?}"));
        }
        Ok(Delay::from_secs(v * mult))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions_round_trip() {
        let b = Bandwidth::from_mbps(100.0);
        assert_eq!(b.bps(), 100e6);
        assert_eq!(b.kbps(), 100e3);
        assert_eq!(b.mbps(), 100.0);
        assert_eq!(b.gbps(), 0.1);
    }

    #[test]
    fn delay_conversions_round_trip() {
        let d = Delay::from_ms(250.0);
        assert_eq!(d.secs(), 0.25);
        assert_eq!(d.ms(), 250.0);
        assert_eq!(d.us(), 250_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = Bandwidth::from_kbps(30.0);
        let b = Bandwidth::from_kbps(20.0);
        assert_eq!(a + b, Bandwidth::from_kbps(50.0));
        assert_eq!(a - b, Bandwidth::from_kbps(10.0));
        assert_eq!(a * 2.0, Bandwidth::from_kbps(60.0));
        assert_eq!(a / 3.0, Bandwidth::from_kbps(10.0));
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a.ratio(b), 1.5);
        let d = Delay::from_ms(10.0) + Delay::from_ms(5.0);
        assert_eq!(d, Delay::from_ms(15.0));
    }

    #[test]
    fn sums() {
        let total: Bandwidth = [1.0, 2.0, 3.0]
            .iter()
            .map(|&m| Bandwidth::from_mbps(m))
            .sum();
        assert_eq!(total, Bandwidth::from_mbps(6.0));
        let total: Delay = [1.0, 2.0].iter().map(|&m| Delay::from_ms(m)).sum();
        assert_eq!(total, Delay::from_ms(3.0));
    }

    #[test]
    fn ordering() {
        assert!(Bandwidth::from_kbps(50.0) < Bandwidth::from_mbps(1.0));
        assert!(Delay::from_us(900.0) < Delay::from_ms(1.0));
        assert_eq!(
            Bandwidth::from_mbps(2.0).min(Bandwidth::from_mbps(1.0)),
            Bandwidth::from_mbps(1.0)
        );
        assert_eq!(
            Delay::from_ms(2.0).max(Delay::from_ms(5.0)),
            Delay::from_ms(5.0)
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", Bandwidth::from_mbps(100.0)), "100.000Mbps");
        assert_eq!(format!("{}", Bandwidth::from_kbps(50.0)), "50.000kbps");
        assert_eq!(format!("{}", Bandwidth::from_gbps(1.5)), "1.500Gbps");
        assert_eq!(format!("{}", Delay::from_ms(12.5)), "12.500ms");
        assert_eq!(format!("{}", Delay::from_secs(2.0)), "2.000s");
        assert_eq!(format!("{}", Delay::from_us(42.0)), "42.000us");
    }

    #[test]
    fn parsing() {
        assert_eq!(
            "100Mbps".parse::<Bandwidth>().unwrap(),
            Bandwidth::from_mbps(100.0)
        );
        assert_eq!(
            "1.5Gbps".parse::<Bandwidth>().unwrap(),
            Bandwidth::from_gbps(1.5)
        );
        assert_eq!(
            "50 kbps".parse::<Bandwidth>().unwrap(),
            Bandwidth::from_kbps(50.0)
        );
        assert_eq!("10ms".parse::<Delay>().unwrap(), Delay::from_ms(10.0));
        assert_eq!("2s".parse::<Delay>().unwrap(), Delay::from_secs(2.0));
        assert_eq!("7us".parse::<Delay>().unwrap(), Delay::from_us(7.0));
        assert!("10".parse::<Delay>().is_err());
        assert!("-5ms".parse::<Delay>().is_err());
        assert!("fastbps".parse::<Bandwidth>().is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_rejected() {
        Bandwidth::from_bps(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_delay_rejected() {
        Delay::from_secs(f64::NAN);
    }
}
