//! Property tests for the `.topo` text format's headline contract:
//!
//! **`parse(serialize(t)) == t`, bitwise** — for arbitrary topologies,
//! with and without geo coordinates, mixed duplex/simplex links,
//! geo-derived and explicit delays, and awkward floating-point
//! capacities/delays/coordinates. Equality here is `Topology`'s
//! structural `PartialEq`, which compares every float by its bits, so a
//! pass means names, coordinates, capacities, delays, link order, and
//! duplex pairing all survive the text round trip exactly.
//!
//! This is the invariant the delay-serialization bug violated (ms
//! formatting reparsed through `* 1e-3` drifts by an ulp); the
//! regression test for that specific case lives in `format::tests`.

use fubar_topology::{format, Bandwidth, Delay, GeoPoint, TopologyBuilder};
use proptest::prelude::*;

/// One randomly drawn link: endpoints by index, duplex/simplex, whether
/// to derive the delay from geo coordinates, raw capacity and delay.
type LinkDraw = (usize, usize, bool, bool, f64, f64);

/// Deterministically builds a topology from the drawn raw material.
/// Returns `None` when the draw degenerates (no usable links).
fn build(
    node_count: usize,
    geo_draws: &[(bool, f64, f64)],
    link_draws: &[LinkDraw],
) -> fubar_topology::Topology {
    let mut b = TopologyBuilder::new("prop");
    for i in 0..node_count {
        let (has_geo, lat, lon) = geo_draws[i % geo_draws.len()];
        if has_geo {
            b.add_node_at(format!("n{i}"), GeoPoint::new(lat, lon))
                .unwrap();
        } else {
            b.add_node(format!("n{i}")).unwrap();
        }
    }
    for &(a, z, duplex, use_geo, cap, delay) in link_draws {
        let (a, z) = (a % node_count, z % node_count);
        if a == z {
            continue; // self-loops are rejected by the builder
        }
        let (na, nz) = (format!("n{a}"), format!("n{z}"));
        let cap = Bandwidth::from_bps(cap);
        if duplex {
            if use_geo && b.add_duplex_link_geo(&na, &nz, cap).is_ok() {
                continue; // both endpoints had coordinates
            }
            b.add_duplex_link(&na, &nz, cap, Delay::from_secs(delay))
                .unwrap();
        } else {
            b.add_simplex_link(&na, &nz, cap, Delay::from_secs(delay))
                .unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline invariant: arbitrary topologies survive
    /// `parse(serialize(t))` with bitwise-identical everything, and the
    /// canonical serialization is a fixed point.
    #[test]
    fn serialize_parse_round_trip_is_bitwise_exact(
        node_count in 2usize..12,
        geo_draws in proptest::collection::vec(
            (any::<bool>(), -90.0f64..90.0, -180.0f64..180.0), 12),
        link_draws in proptest::collection::vec(
            (0usize..12, 0usize..12, any::<bool>(), any::<bool>(),
             1e-3f64..1e12, 0.0f64..0.5),
            1..40),
    ) {
        let t = build(node_count, &geo_draws, &link_draws);
        let text = format::serialize(&t);
        let back = match format::parse(&text) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!(
                "serialized topology failed to reparse: {e}\n{text}"))),
        };
        // Structural equality is bitwise on every float (capacities,
        // delays/link costs, coordinates) and covers names, link order,
        // and duplex pairing.
        prop_assert_eq!(&t, &back, "round trip must be bitwise-exact");
        // Serialization is a fixed point: canonical text re-serializes
        // to itself.
        prop_assert_eq!(&text, &format::serialize(&back));
        // Spot-check the individual bit patterns too, so a future
        // PartialEq regression cannot silently weaken this test.
        for l in t.links() {
            prop_assert_eq!(
                t.capacity(l).bps().to_bits(),
                back.capacity(l).bps().to_bits()
            );
            prop_assert_eq!(
                t.delay(l).secs().to_bits(),
                back.delay(l).secs().to_bits()
            );
        }
        for n in t.nodes() {
            prop_assert_eq!(t.node_name(n), back.node_name(n));
        }
    }
}

/// A fixture exercising every `.topo` directive — geo and plain nodes,
/// duplex/simplex links, explicit and geo-derived delays — raw material
/// for the mutation fuzzer below.
const FUZZ_FIXTURE: &str = "\
topology fuzz_fixture
node a 40.7 -74.0
node b 34.0 -118.2
node c
link a b 3000000bps geo
link b c 800000bps 0.002s
simplex c a 500000bps 0.004s
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parser totality on arbitrary bytes: `format::parse` never
    /// panics — every input either errors or yields a topology whose
    /// canonical serialization round-trips bitwise.
    #[test]
    fn topo_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(t) = format::parse(&text) {
            let canon = format::serialize(&t);
            let back = format::parse(&canon)
                .map_err(|e| TestCaseError::fail(format!("canonical form must reparse: {e}")))?;
            prop_assert_eq!(&t, &back, "round trip must be bitwise-exact");
            prop_assert_eq!(&canon, &format::serialize(&back));
        }
    }

    /// Structured fuzz: corrupt one token of a valid file (hostile
    /// numbers, overflowing bandwidths, wrong units, out-of-range
    /// coordinates). Reject or round-trip — never panic.
    #[test]
    fn topo_parser_survives_mutated_fixture_tokens(
        line_idx in 0usize..64,
        tok_idx in 0usize..8,
        junk_idx in 0usize..16,
        delete_line in any::<bool>(),
    ) {
        const JUNK: [&str; 16] = [
            "-1s", "NaN", "inf", "-inf", "1e308Gbps", "1e400s", "geo",
            "0.0.0", "99999999999999999999999999bps", "node", "-91.0",
            "181.0", "🦀", "-0.0", "a", "",
        ];
        let mut lines: Vec<String> = FUZZ_FIXTURE.lines().map(str::to_string).collect();
        let li = line_idx % lines.len();
        if delete_line {
            lines.remove(li);
        } else {
            let mut toks: Vec<String> =
                lines[li].split_whitespace().map(str::to_string).collect();
            let ti = tok_idx % toks.len();
            toks[ti] = JUNK[junk_idx].to_string();
            lines[li] = toks.join(" ");
        }
        let text = lines.join("\n");
        if let Ok(t) = format::parse(&text) {
            let canon = format::serialize(&t);
            let back = format::parse(&canon)
                .map_err(|e| TestCaseError::fail(format!("canonical form must reparse: {e}")))?;
            prop_assert_eq!(t, back, "round trip must be bitwise-exact");
        }
    }
}
