//! Traffic aggregates: the unit FUBAR routes.
//!
//! An aggregate is all the traffic sharing an (ingress POP, egress POP,
//! traffic class) triple — paper §2.4. FUBAR never tracks individual
//! flows; it tracks how many flows an aggregate contains and splits that
//! integer across paths.

use fubar_graph::NodeId;
use fubar_topology::Bandwidth;
use fubar_utility::{TrafficClass, UtilityFunction};
use std::fmt;

/// Dense identifier of an aggregate within a
/// [`TrafficMatrix`](crate::TrafficMatrix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AggregateId(pub u32);

impl AggregateId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AggregateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for AggregateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A traffic aggregate: `flow_count` flows from `ingress` to `egress`,
/// all of traffic class `class`, sharing one utility function.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Identifier within the owning matrix.
    pub id: AggregateId,
    /// Entry POP.
    pub ingress: NodeId,
    /// Exit POP.
    pub egress: NodeId,
    /// Application class.
    pub class: TrafficClass,
    /// Approximate number of concurrent flows (paper §2.1: FUBAR needs
    /// "approximate flow counts for each aggregate").
    pub flow_count: u32,
    /// The per-flow utility function.
    pub utility: UtilityFunction,
    /// Weight multiplier in the network-utility objective. 1.0 by
    /// default; raised to prioritize (Fig 5 raises it for large flows).
    pub priority_weight: f64,
}

impl Aggregate {
    /// Creates an aggregate with the class's preset utility function and
    /// unit priority.
    ///
    /// # Panics
    ///
    /// Panics when `flow_count` is zero: an empty aggregate cannot be
    /// routed, measured, or split.
    pub fn new(
        id: AggregateId,
        ingress: NodeId,
        egress: NodeId,
        class: TrafficClass,
        flow_count: u32,
    ) -> Self {
        assert!(flow_count > 0, "aggregate must contain at least one flow");
        Aggregate {
            id,
            ingress,
            egress,
            class,
            flow_count,
            utility: class.utility(),
            priority_weight: 1.0,
        }
    }

    /// Per-flow demand peak (the inflection point of the bandwidth
    /// component).
    pub fn per_flow_demand(&self) -> Bandwidth {
        self.utility.peak_demand()
    }

    /// Total demand if every flow were fully satisfied.
    pub fn total_demand(&self) -> Bandwidth {
        self.per_flow_demand() * f64::from(self.flow_count)
    }

    /// Weight of this aggregate in the network-utility average:
    /// `flow_count × priority_weight` (paper §3: "the average of
    /// utilities of all aggregates, weighted by number of flows in the
    /// aggregate", with Fig 5's prioritization as a multiplier).
    pub fn objective_weight(&self) -> f64 {
        f64::from(self.flow_count) * self.priority_weight
    }

    /// True when the aggregate's endpoints coincide; such aggregates
    /// never touch the backbone and are trivially satisfied.
    pub fn is_intra_pop(&self) -> bool {
        self.ingress == self.egress
    }

    /// True for the heavy file-transfer class (the paper's "large
    /// flows").
    pub fn is_large(&self) -> bool {
        self.class.is_large()
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{} {} x{} ({} total)",
            self.id,
            self.ingress,
            self.egress,
            self.class,
            self.flow_count,
            self.total_demand()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fubar_topology::Bandwidth;

    #[test]
    fn demand_scales_with_flow_count() {
        let a = Aggregate::new(
            AggregateId(0),
            NodeId(0),
            NodeId(1),
            TrafficClass::RealTime,
            10,
        );
        assert_eq!(a.per_flow_demand(), Bandwidth::from_kbps(50.0));
        assert_eq!(a.total_demand(), Bandwidth::from_kbps(500.0));
    }

    #[test]
    fn objective_weight_combines_flows_and_priority() {
        let mut a = Aggregate::new(
            AggregateId(1),
            NodeId(0),
            NodeId(1),
            TrafficClass::BulkTransfer,
            20,
        );
        assert_eq!(a.objective_weight(), 20.0);
        a.priority_weight = 2.5;
        assert_eq!(a.objective_weight(), 50.0);
    }

    #[test]
    fn intra_pop_detection() {
        let a = Aggregate::new(
            AggregateId(2),
            NodeId(3),
            NodeId(3),
            TrafficClass::BulkTransfer,
            1,
        );
        assert!(a.is_intra_pop());
    }

    #[test]
    fn large_detection() {
        let a = Aggregate::new(
            AggregateId(3),
            NodeId(0),
            NodeId(1),
            TrafficClass::LargeFile { peak_mbps: 2.0 },
            3,
        );
        assert!(a.is_large());
        assert_eq!(a.total_demand(), Bandwidth::from_mbps(6.0));
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_rejected() {
        Aggregate::new(
            AggregateId(0),
            NodeId(0),
            NodeId(1),
            TrafficClass::RealTime,
            0,
        );
    }

    #[test]
    fn display_is_informative() {
        let a = Aggregate::new(
            AggregateId(7),
            NodeId(0),
            NodeId(1),
            TrafficClass::RealTime,
            4,
        );
        let s = a.to_string();
        assert!(s.contains("A7"));
        assert!(s.contains("real-time"));
        assert!(s.contains("x4"));
    }
}
