//! Heuristic traffic classification.
//!
//! Paper §1: "We classify traffic with crude heuristics supplemented by
//! operator knowledge when that is available." This module implements
//! exactly that: a port/protocol heuristic with an operator override
//! table that wins whenever it matches. It is used by the SDN substrate
//! to tag measured aggregates with a [`TrafficClass`].

use fubar_utility::TrafficClass;
use std::collections::HashMap;

/// Transport protocol of an observed flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
}

/// The observable features the classifier works from.
#[derive(Clone, Copy, Debug)]
pub struct FlowFeatures {
    /// Transport protocol.
    pub protocol: Protocol,
    /// Destination port.
    pub dst_port: u16,
    /// Mean observed per-flow rate estimate in bits/s, if known.
    pub rate_estimate_bps: Option<f64>,
}

/// An operator-supplied override: flows matching (protocol, port) are
/// always the given class (paper §2.2: "the operator can specify a
/// non-default delay curve for flows to a certain port or from a
/// particular server").
#[derive(Clone, Debug)]
pub struct OperatorRule {
    /// Protocol to match.
    pub protocol: Protocol,
    /// Destination port to match.
    pub dst_port: u16,
    /// The class to assign.
    pub class: TrafficClass,
}

/// A port/protocol heuristic classifier with operator overrides.
#[derive(Clone, Debug, Default)]
pub struct Classifier {
    // lint:allow(hash-iteration): (proto, port)→class lookups only, never iterated
    overrides: HashMap<(Protocol, u16), TrafficClass>,
}

/// Per-flow rate (bps) above which an unmatched flow is considered a
/// heavy file transfer.
const LARGE_RATE_THRESHOLD_BPS: f64 = 700_000.0;

impl Classifier {
    /// A classifier with no operator knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs operator rules; later rules win on conflicts.
    pub fn with_rules(rules: impl IntoIterator<Item = OperatorRule>) -> Self {
        let mut c = Classifier::default();
        for r in rules {
            c.add_rule(r);
        }
        c
    }

    /// Adds one operator rule, replacing any previous rule for the same
    /// (protocol, port).
    pub fn add_rule(&mut self, rule: OperatorRule) {
        self.overrides
            .insert((rule.protocol, rule.dst_port), rule.class);
    }

    /// Number of installed operator rules.
    pub fn rule_count(&self) -> usize {
        self.overrides.len()
    }

    /// Classifies one flow. Operator rules win; otherwise the crude
    /// heuristics of the paper: interactive/realtime ports → real-time,
    /// very fast flows → large file transfer, everything else → bulk.
    pub fn classify(&self, f: &FlowFeatures) -> TrafficClass {
        if let Some(&class) = self.overrides.get(&(f.protocol, f.dst_port)) {
            return class;
        }
        match (f.protocol, f.dst_port) {
            // RTP/conferencing range, SIP, STUN.
            (Protocol::Udp, 16_384..=32_767)
            | (Protocol::Udp, 5060..=5061)
            | (Protocol::Udp, 3478) => TrafficClass::RealTime,
            // DNS is tiny and latency-bound: treat as real-time.
            (Protocol::Udp, 53) => TrafficClass::RealTime,
            // SSH is interactive.
            (Protocol::Tcp, 22) => TrafficClass::RealTime,
            _ => {
                if let Some(rate) = f.rate_estimate_bps {
                    if rate >= LARGE_RATE_THRESHOLD_BPS {
                        return TrafficClass::LargeFile {
                            peak_mbps: (rate / 1e6).ceil().clamp(1.0, 2.0),
                        };
                    }
                }
                TrafficClass::BulkTransfer
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(protocol: Protocol, port: u16, rate: Option<f64>) -> FlowFeatures {
        FlowFeatures {
            protocol,
            dst_port: port,
            rate_estimate_bps: rate,
        }
    }

    #[test]
    fn rtp_range_is_real_time() {
        let c = Classifier::new();
        assert_eq!(
            c.classify(&feat(Protocol::Udp, 20_000, None)),
            TrafficClass::RealTime
        );
        assert_eq!(
            c.classify(&feat(Protocol::Udp, 5060, None)),
            TrafficClass::RealTime
        );
    }

    #[test]
    fn web_is_bulk() {
        let c = Classifier::new();
        assert_eq!(
            c.classify(&feat(Protocol::Tcp, 443, None)),
            TrafficClass::BulkTransfer
        );
        assert_eq!(
            c.classify(&feat(Protocol::Tcp, 80, Some(100_000.0))),
            TrafficClass::BulkTransfer
        );
    }

    #[test]
    fn fast_flows_become_large() {
        let c = Classifier::new();
        match c.classify(&feat(Protocol::Tcp, 443, Some(1_500_000.0))) {
            TrafficClass::LargeFile { peak_mbps } => {
                assert!((1.0..=2.0).contains(&peak_mbps))
            }
            other => panic!("expected large, got {other}"),
        }
    }

    #[test]
    fn operator_rules_win() {
        let c = Classifier::with_rules([OperatorRule {
            protocol: Protocol::Tcp,
            dst_port: 443,
            class: TrafficClass::RealTime, // operator says this 443 service is interactive
        }]);
        assert_eq!(
            c.classify(&feat(Protocol::Tcp, 443, Some(5_000_000.0))),
            TrafficClass::RealTime
        );
        assert_eq!(c.rule_count(), 1);
    }

    #[test]
    fn later_rules_replace_earlier() {
        let mut c = Classifier::new();
        c.add_rule(OperatorRule {
            protocol: Protocol::Udp,
            dst_port: 9000,
            class: TrafficClass::BulkTransfer,
        });
        c.add_rule(OperatorRule {
            protocol: Protocol::Udp,
            dst_port: 9000,
            class: TrafficClass::RealTime,
        });
        assert_eq!(c.rule_count(), 1);
        assert_eq!(
            c.classify(&feat(Protocol::Udp, 9000, None)),
            TrafficClass::RealTime
        );
    }

    #[test]
    fn ssh_and_dns_are_interactive() {
        let c = Classifier::new();
        assert_eq!(
            c.classify(&feat(Protocol::Tcp, 22, None)),
            TrafficClass::RealTime
        );
        assert_eq!(
            c.classify(&feat(Protocol::Udp, 53, None)),
            TrafficClass::RealTime
        );
        // TCP port 53 (zone transfers) is bulk, though.
        assert_eq!(
            c.classify(&feat(Protocol::Tcp, 53, None)),
            TrafficClass::BulkTransfer
        );
    }
}
