//! A line-oriented text format for traffic matrices.
//!
//! Companion to `fubar_topology::format`: together they make a complete
//! optimization input diffable and reproducible without a serialization
//! framework. Grammar (one directive per line, `#` starts a comment):
//!
//! ```text
//! aggregate <src> <dst> <class> <flows> [priority <w>]
//! ```
//!
//! where `<class>` is `realtime`, `bulk`, or `large:<peak_mbps>` (e.g.
//! `large:2`), and node names are resolved against the topology the
//! matrix is parsed for.

use crate::aggregate::{Aggregate, AggregateId};
use crate::matrix::TrafficMatrix;
use fubar_topology::Topology;
use fubar_utility::TrafficClass;
use std::fmt;

/// A parse failure, with the 1-based line number where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn class_token(class: &TrafficClass) -> String {
    match class {
        TrafficClass::RealTime => "realtime".into(),
        TrafficClass::BulkTransfer => "bulk".into(),
        TrafficClass::LargeFile { peak_mbps } => format!("large:{peak_mbps}"),
    }
}

fn parse_class(token: &str, line: usize) -> Result<TrafficClass, ParseError> {
    match token {
        "realtime" => Ok(TrafficClass::RealTime),
        "bulk" => Ok(TrafficClass::BulkTransfer),
        other => {
            let peak = other
                .strip_prefix("large:")
                .ok_or_else(|| err(line, format!("unknown class {other:?}")))?;
            let mbps: f64 = peak
                .parse()
                .map_err(|e| err(line, format!("bad large peak: {e}")))?;
            if mbps <= 0.0 || !mbps.is_finite() {
                return Err(err(line, "large peak must be positive"));
            }
            Ok(TrafficClass::LargeFile { peak_mbps: mbps })
        }
    }
}

/// Parses a traffic matrix, resolving node names against `topology`.
pub fn parse(text: &str, topology: &Topology) -> Result<TrafficMatrix, ParseError> {
    let mut aggregates = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens[0] != "aggregate" {
            return Err(err(lineno, format!("unknown directive {:?}", tokens[0])));
        }
        if tokens.len() != 5 && tokens.len() != 7 {
            return Err(err(
                lineno,
                "usage: aggregate <src> <dst> <class> <flows> [priority <w>]",
            ));
        }
        let src = topology
            .node(tokens[1])
            .map_err(|e| err(lineno, e.to_string()))?;
        let dst = topology
            .node(tokens[2])
            .map_err(|e| err(lineno, e.to_string()))?;
        let class = parse_class(tokens[3], lineno)?;
        let flows: u32 = tokens[4]
            .parse()
            .map_err(|e| err(lineno, format!("bad flow count: {e}")))?;
        if flows == 0 {
            return Err(err(lineno, "flow count must be positive"));
        }
        let mut agg = Aggregate::new(AggregateId(0), src, dst, class, flows);
        if tokens.len() == 7 {
            if tokens[5] != "priority" {
                return Err(err(
                    lineno,
                    format!("expected `priority`, got {:?}", tokens[5]),
                ));
            }
            let w: f64 = tokens[6]
                .parse()
                .map_err(|e| err(lineno, format!("bad priority: {e}")))?;
            if w <= 0.0 || !w.is_finite() {
                return Err(err(lineno, "priority must be positive"));
            }
            agg.priority_weight = w;
        }
        aggregates.push(agg);
    }
    Ok(TrafficMatrix::new(aggregates))
}

/// Serializes a matrix using `topology` for node names. Only priorities
/// differing from 1.0 are written.
pub fn serialize(tm: &TrafficMatrix, topology: &Topology) -> String {
    let mut out = String::new();
    for a in tm.iter() {
        out.push_str(&format!(
            "aggregate {} {} {} {}",
            topology.node_name(a.ingress),
            topology.node_name(a.egress),
            class_token(&a.class),
            a.flow_count
        ));
        if (a.priority_weight - 1.0).abs() > 1e-12 {
            out.push_str(&format!(" priority {}", a.priority_weight));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use crate::WorkloadConfig;
    use fubar_topology::{generators, Bandwidth};

    fn topo() -> Topology {
        generators::abilene(Bandwidth::from_mbps(10.0))
    }

    #[test]
    fn parses_all_classes_and_priorities() {
        let t = topo();
        let text = "
# demo matrix
aggregate Seattle NewYork realtime 12
aggregate NewYork Seattle bulk 7
aggregate Denver Houston large:2 3 priority 4.5
";
        let tm = parse(text, &t).unwrap();
        assert_eq!(tm.len(), 3);
        assert_eq!(tm.aggregate(AggregateId(0)).class, TrafficClass::RealTime);
        assert_eq!(tm.aggregate(AggregateId(1)).flow_count, 7);
        let large = tm.aggregate(AggregateId(2));
        assert!(large.is_large());
        assert_eq!(large.priority_weight, 4.5);
        assert_eq!(large.per_flow_demand(), Bandwidth::from_mbps(2.0));
    }

    #[test]
    fn round_trips_generated_workloads() {
        let t = topo();
        let tm = workload::generate(
            &t,
            &WorkloadConfig {
                include_intra_pop: false,
                ..Default::default()
            },
            7,
        )
        .with_large_priority(3.0);
        let text = serialize(&tm, &t);
        let back = parse(&text, &t).unwrap();
        assert_eq!(back.len(), tm.len());
        for (a, b) in tm.iter().zip(back.iter()) {
            assert_eq!(a.ingress, b.ingress);
            assert_eq!(a.egress, b.egress);
            assert_eq!(a.class, b.class);
            assert_eq!(a.flow_count, b.flow_count);
            assert!((a.priority_weight - b.priority_weight).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let t = topo();
        let e = parse("aggregate Nowhere NewYork bulk 3\n", &t).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("Nowhere"));

        let e = parse("\nroute a b\n", &t).unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("aggregate Seattle NewYork voip 3\n", &t).unwrap_err();
        assert!(e.message.contains("unknown class"));

        let e = parse("aggregate Seattle NewYork bulk 0\n", &t).unwrap_err();
        assert!(e.message.contains("positive"));

        let e = parse("aggregate Seattle NewYork large:-1 3\n", &t).unwrap_err();
        assert!(e.message.contains("positive"));

        let e = parse("aggregate Seattle NewYork bulk 3 weight 2\n", &t).unwrap_err();
        assert!(e.message.contains("priority"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = topo();
        let tm = parse(
            "# nothing\n\naggregate Seattle Denver bulk 2 # inline\n",
            &t,
        )
        .unwrap();
        assert_eq!(tm.len(), 1);
    }

    #[test]
    fn empty_input_is_an_empty_matrix() {
        let t = topo();
        assert!(parse("", &t).unwrap().is_empty());
    }
}
