//! # fubar-traffic
//!
//! Traffic-matrix machinery for the FUBAR reproduction: aggregates (the
//! unit FUBAR routes — paper §2.4), the [`TrafficMatrix`] container, a
//! deterministic generator for the paper's §3 evaluation workload, and
//! the crude-heuristics-plus-operator-knowledge [`Classifier`] of §1.
//!
//! ```
//! use fubar_topology::{generators, Bandwidth};
//! use fubar_traffic::{workload, WorkloadConfig};
//!
//! let topo = generators::he_core(Bandwidth::from_mbps(100.0));
//! let tm = workload::generate(&topo, &WorkloadConfig::default(), 42);
//! assert_eq!(tm.len(), 961); // the paper's aggregate count
//! ```
#![forbid(unsafe_code)]

mod aggregate;
mod classifier;
pub mod format;
mod matrix;
pub mod workload;

pub use aggregate::{Aggregate, AggregateId};
pub use classifier::{Classifier, FlowFeatures, OperatorRule, Protocol};
pub use matrix::TrafficMatrix;
pub use workload::{GravityConfig, WorkloadConfig};
