//! The traffic matrix: every aggregate FUBAR is currently routing.

use crate::aggregate::{Aggregate, AggregateId};
use fubar_graph::NodeId;
use fubar_topology::Bandwidth;
use fubar_utility::TrafficClass;
use std::collections::BTreeMap;

/// An immutable collection of aggregates, indexed densely by
/// [`AggregateId`]. At most one aggregate may exist per (ingress, egress,
/// class-kind) triple; the paper's workload has exactly one per ordered
/// POP pair.
#[derive(Clone, Debug, Default)]
pub struct TrafficMatrix {
    aggregates: Vec<Aggregate>,
    by_pair: BTreeMap<(NodeId, NodeId), Vec<AggregateId>>,
}

impl TrafficMatrix {
    /// Builds a matrix, re-assigning dense ids in iteration order.
    pub fn new(mut aggregates: Vec<Aggregate>) -> Self {
        let mut by_pair: BTreeMap<(NodeId, NodeId), Vec<AggregateId>> = BTreeMap::new();
        for (i, a) in aggregates.iter_mut().enumerate() {
            a.id = AggregateId(i as u32);
            by_pair.entry((a.ingress, a.egress)).or_default().push(a.id);
        }
        TrafficMatrix {
            aggregates,
            by_pair,
        }
    }

    /// Number of aggregates.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// True when the matrix holds no aggregates.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// The aggregate with the given id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[inline]
    pub fn aggregate(&self, id: AggregateId) -> &Aggregate {
        &self.aggregates[id.index()]
    }

    /// All aggregates in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Aggregate> {
        self.aggregates.iter()
    }

    /// All aggregate ids.
    pub fn ids(&self) -> impl Iterator<Item = AggregateId> {
        (0..self.aggregates.len() as u32).map(AggregateId)
    }

    /// The aggregates flowing from `ingress` to `egress`, if any.
    pub fn for_pair(&self, ingress: NodeId, egress: NodeId) -> &[AggregateId] {
        self.by_pair
            .get(&(ingress, egress))
            .map_or(&[], Vec::as_slice)
    }

    /// Sum of all aggregates' fully-satisfied demands.
    pub fn total_demand(&self) -> Bandwidth {
        self.aggregates.iter().map(Aggregate::total_demand).sum()
    }

    /// Total number of flows across all aggregates.
    pub fn total_flows(&self) -> u64 {
        self.aggregates
            .iter()
            .map(|a| u64::from(a.flow_count))
            .sum()
    }

    /// Ids of the "large flow" aggregates (heavy file transfers), whose
    /// utility the paper tracks separately.
    pub fn large_ids(&self) -> Vec<AggregateId> {
        self.aggregates
            .iter()
            .filter(|a| a.is_large())
            .map(|a| a.id)
            .collect()
    }

    /// A copy with the priority weight of every *large* aggregate set to
    /// `weight` — the Fig 5 experiment ("priority is given to large flows
    /// by increasing their weighting when computing the network
    /// utility").
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not strictly positive.
    pub fn with_large_priority(&self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "priority weight must be positive"
        );
        let mut m = self.clone();
        for a in &mut m.aggregates {
            if a.is_large() {
                a.priority_weight = weight;
            }
        }
        m
    }

    /// A copy with the delay axis of every *small* (non-large) aggregate
    /// stretched by `factor` — the paper's relaxed-delay experiment runs
    /// "the underprovisioned case with small flows using double the delay
    /// parameter" (Fig 6), i.e. `factor = 2.0`.
    pub fn with_relaxed_small_delays(&self, factor: f64) -> Self {
        let mut m = self.clone();
        for a in &mut m.aggregates {
            if !a.is_large() {
                a.utility = a.utility.with_relaxed_delay(factor);
            }
        }
        m
    }

    /// A copy with one aggregate's utility function replaced (used when
    /// inflection inference updates a demand peak).
    pub fn with_utility(&self, id: AggregateId, utility: fubar_utility::UtilityFunction) -> Self {
        let mut m = self.clone();
        m.aggregates[id.index()].utility = utility;
        m
    }

    /// Sets one aggregate's live flow count in place.
    ///
    /// Unlike [`Aggregate::new`], zero is allowed here: a zero-flow
    /// aggregate is *idle* — it stays in the matrix (ids stay dense, so
    /// per-aggregate state such as data-plane counters keeps its
    /// indexing) but contributes no traffic, no demand, and no objective
    /// weight. Dynamic scenarios park departed aggregates at zero and
    /// revive them on re-arrival.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn set_flow_count(&mut self, id: AggregateId, flows: u32) {
        self.aggregates[id.index()].flow_count = flows;
    }

    /// Count of aggregates per class kind `(real-time, bulk, large)`.
    pub fn class_census(&self) -> (usize, usize, usize) {
        let mut rt = 0;
        let mut bulk = 0;
        let mut large = 0;
        for a in &self.aggregates {
            match a.class {
                TrafficClass::RealTime => rt += 1,
                TrafficClass::BulkTransfer => bulk += 1,
                TrafficClass::LargeFile { .. } => large += 1,
            }
        }
        (rt, bulk, large)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(i: u32, from: u32, to: u32, class: TrafficClass, flows: u32) -> Aggregate {
        Aggregate::new(AggregateId(i), NodeId(from), NodeId(to), class, flows)
    }

    fn sample() -> TrafficMatrix {
        TrafficMatrix::new(vec![
            agg(0, 0, 1, TrafficClass::RealTime, 10),
            agg(0, 1, 0, TrafficClass::BulkTransfer, 5),
            agg(0, 0, 1, TrafficClass::LargeFile { peak_mbps: 2.0 }, 2),
        ])
    }

    #[test]
    fn ids_are_reassigned_densely() {
        let m = sample();
        for (i, a) in m.iter().enumerate() {
            assert_eq!(a.id, AggregateId(i as u32));
        }
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn pair_lookup() {
        let m = sample();
        let ids = m.for_pair(NodeId(0), NodeId(1));
        assert_eq!(ids.len(), 2);
        assert!(m.for_pair(NodeId(1), NodeId(1)).is_empty());
    }

    #[test]
    fn totals() {
        let m = sample();
        assert_eq!(m.total_flows(), 17);
        // 10*50k + 5*120k + 2*2M = 0.5M + 0.6M + 4M = 5.1M
        assert!((m.total_demand().mbps() - 5.1).abs() < 1e-9);
    }

    #[test]
    fn large_ids_and_census() {
        let m = sample();
        assert_eq!(m.large_ids(), vec![AggregateId(2)]);
        assert_eq!(m.class_census(), (1, 1, 1));
    }

    #[test]
    fn large_priority_override_only_touches_large() {
        let m = sample().with_large_priority(4.0);
        assert_eq!(m.aggregate(AggregateId(0)).priority_weight, 1.0);
        assert_eq!(m.aggregate(AggregateId(2)).priority_weight, 4.0);
        assert_eq!(m.aggregate(AggregateId(2)).objective_weight(), 8.0);
    }

    #[test]
    fn relaxed_small_delays_leave_large_alone() {
        use fubar_topology::{Bandwidth, Delay};
        let m = sample().with_relaxed_small_delays(2.0);
        let small = m.aggregate(AggregateId(0));
        let large = m.aggregate(AggregateId(2));
        // Real-time normally dies at 100ms; relaxed dies at 200ms.
        assert!(
            small
                .utility
                .eval(Bandwidth::from_kbps(50.0), Delay::from_ms(150.0))
                > 0.0
        );
        // Large unchanged: bulk-shaped curve evaluated identically.
        let reference = TrafficClass::LargeFile { peak_mbps: 2.0 }.utility();
        assert_eq!(
            large
                .utility
                .eval(Bandwidth::from_mbps(1.0), Delay::from_ms(500.0)),
            reference.eval(Bandwidth::from_mbps(1.0), Delay::from_ms(500.0))
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_priority_rejected() {
        sample().with_large_priority(0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = TrafficMatrix::new(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.total_flows(), 0);
        assert_eq!(m.total_demand(), Bandwidth::ZERO);
    }
}
