//! The paper's evaluation workload (§3).
//!
//! "For each of all 961 aggregates we randomly pick either a real-time
//! utility function or a bulk-transfer one. To reflect real-world traffic
//! we also add a 2% probability of there being a large aggregate using a
//! file transfer utility function with a higher max bandwidth (1 or
//! 2 Mbps)."
//!
//! 961 = 31², i.e. one aggregate per *ordered* POP pair including the
//! trivial intra-POP pairs ("traffic from all network devices to all
//! other devices", §1 — intra-POP aggregates never touch the backbone and
//! are always satisfied). [`WorkloadConfig::include_intra_pop`] controls
//! whether those are generated.
//!
//! The paper does not publish flow counts per aggregate; the defaults
//! here are calibrated (see `fubar-core`'s integration tests) so that the
//! 100 Mb/s uniform-capacity case is *provisioned* in the paper's sense —
//! congested under shortest-path routing, decongestable by FUBAR — and
//! 75 Mb/s is underprovisioned.

use crate::aggregate::{Aggregate, AggregateId};
use crate::matrix::TrafficMatrix;
use fubar_topology::Topology;
use fubar_utility::TrafficClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for [`generate`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Generate an aggregate for src == dst pairs (31² = 961 aggregates
    /// on the HE topology, matching the paper's count).
    pub include_intra_pop: bool,
    /// Only generate aggregates whose endpoints share a region (the
    /// node-name prefix before `_`, e.g. `pop3_7` → region `pop3` —
    /// the same convention the optimizer's region sharding uses). On
    /// hierarchical topologies this yields traffic that never rides the
    /// inter-region trunks, so every region is an independent
    /// congestion component — the workload shape that exercises
    /// per-component optimizer passes and deep intra-region
    /// congestion. Nodes without `_` are their own region, so on flat
    /// topologies this keeps only intra-POP pairs.
    pub intra_region_only: bool,
    /// Probability a (non-large) aggregate is real-time rather than bulk.
    pub real_time_fraction: f64,
    /// Probability an aggregate is a heavy file-transfer one (paper: 2%).
    pub large_probability: f64,
    /// Candidate per-flow demand peaks for large aggregates, Mb/s
    /// (paper: 1 or 2).
    pub large_peaks_mbps: Vec<f64>,
    /// Inclusive range of flow counts for ordinary aggregates.
    pub flow_count: (u32, u32),
    /// Inclusive range of flow counts for large aggregates.
    pub large_flow_count: (u32, u32),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            include_intra_pop: true,
            intra_region_only: false,
            real_time_fraction: 0.5,
            large_probability: 0.02,
            large_peaks_mbps: vec![1.0, 2.0],
            flow_count: (8, 30),
            large_flow_count: (2, 5),
        }
    }
}

impl WorkloadConfig {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.real_time_fraction),
            "real_time_fraction must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.large_probability),
            "large_probability must be a probability"
        );
        assert!(
            !self.large_peaks_mbps.is_empty() && self.large_peaks_mbps.iter().all(|&p| p > 0.0),
            "need at least one positive large peak"
        );
        assert!(
            self.flow_count.0 >= 1 && self.flow_count.0 <= self.flow_count.1,
            "bad flow_count range"
        );
        assert!(
            self.large_flow_count.0 >= 1 && self.large_flow_count.0 <= self.large_flow_count.1,
            "bad large_flow_count range"
        );
    }
}

/// The region label of a node name: the prefix before the first `_`,
/// or the whole name when there is none (mirrors the optimizer's
/// region-sharding convention).
fn region_label(name: &str) -> &str {
    name.split_once('_').map_or(name, |(region, _)| region)
}

/// Generates the paper's §3 workload on `topology`, deterministically
/// from `seed`. One aggregate per ordered POP pair (restricted to
/// same-region pairs under [`WorkloadConfig::intra_region_only`]).
pub fn generate(topology: &Topology, config: &WorkloadConfig, seed: u64) -> TrafficMatrix {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aggregates = Vec::new();
    for src in topology.nodes() {
        for dst in topology.nodes() {
            if src == dst && !config.include_intra_pop {
                continue;
            }
            // Skipping *before* any RNG draw keeps the generated pairs
            // deterministic per (config, seed).
            if config.intra_region_only
                && region_label(topology.node_name(src)) != region_label(topology.node_name(dst))
            {
                continue;
            }
            let (class, flows) = if rng.gen::<f64>() < config.large_probability {
                let peak = config.large_peaks_mbps[rng.gen_range(0..config.large_peaks_mbps.len())];
                (
                    TrafficClass::LargeFile { peak_mbps: peak },
                    rng.gen_range(config.large_flow_count.0..=config.large_flow_count.1),
                )
            } else {
                let class = if rng.gen::<f64>() < config.real_time_fraction {
                    TrafficClass::RealTime
                } else {
                    TrafficClass::BulkTransfer
                };
                (
                    class,
                    rng.gen_range(config.flow_count.0..=config.flow_count.1),
                )
            };
            aggregates.push(Aggregate::new(AggregateId(0), src, dst, class, flows));
        }
    }
    TrafficMatrix::new(aggregates)
}

/// Tunables for [`generate_gravity`].
#[derive(Clone, Debug)]
pub struct GravityConfig {
    /// Target total offered demand across the whole matrix.
    pub total_demand: fubar_topology::Bandwidth,
    /// Probability a (non-large) aggregate is real-time rather than bulk.
    pub real_time_fraction: f64,
    /// Probability an aggregate is a heavy file-transfer one.
    pub large_probability: f64,
    /// Candidate per-flow demand peaks for large aggregates, Mb/s.
    pub large_peaks_mbps: Vec<f64>,
}

impl Default for GravityConfig {
    fn default() -> Self {
        GravityConfig {
            total_demand: fubar_topology::Bandwidth::from_gbps(1.0),
            real_time_fraction: 0.5,
            large_probability: 0.02,
            large_peaks_mbps: vec![1.0, 2.0],
        }
    }
}

/// Generates a gravity-model traffic matrix: demand between two POPs is
/// proportional to the product of their "masses" (their degree in the
/// topology — a standard proxy when population data is unavailable),
/// normalized so the matrix offers `config.total_demand` in aggregate.
///
/// Compared to [`generate`], which draws every pair identically (the
/// paper's §3 workload), gravity matrices concentrate demand between
/// well-connected hubs — a more realistic stress pattern for the
/// optimizer and the default for the workspace's non-paper experiments.
pub fn generate_gravity(topology: &Topology, config: &GravityConfig, seed: u64) -> TrafficMatrix {
    assert!(
        (0.0..=1.0).contains(&config.real_time_fraction),
        "real_time_fraction must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.large_probability),
        "large_probability must be a probability"
    );
    assert!(
        !config.large_peaks_mbps.is_empty() && config.large_peaks_mbps.iter().all(|&p| p > 0.0),
        "need at least one positive large peak"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Masses: out-degree (duplex topologies are symmetric anyway).
    let masses: Vec<f64> = topology
        .nodes()
        .map(|n| topology.graph().out_links(n).len().max(1) as f64)
        .collect();
    let mut weights = Vec::new();
    let mut pairs = Vec::new();
    for (i, src) in topology.nodes().enumerate() {
        for (j, dst) in topology.nodes().enumerate() {
            if src == dst {
                continue;
            }
            pairs.push((src, dst));
            weights.push(masses[i] * masses[j]);
        }
    }
    let total_w: f64 = weights.iter().sum();
    let mut aggregates = Vec::with_capacity(pairs.len());
    for (k, &(src, dst)) in pairs.iter().enumerate() {
        let demand_bps = config.total_demand.bps() * weights[k] / total_w;
        let (class, per_flow) = if rng.gen::<f64>() < config.large_probability {
            let peak = config.large_peaks_mbps[rng.gen_range(0..config.large_peaks_mbps.len())];
            (TrafficClass::LargeFile { peak_mbps: peak }, peak * 1e6)
        } else if rng.gen::<f64>() < config.real_time_fraction {
            (TrafficClass::RealTime, 50e3)
        } else {
            (TrafficClass::BulkTransfer, 120e3)
        };
        let flows = ((demand_bps / per_flow).round() as u32).max(1);
        aggregates.push(Aggregate::new(AggregateId(0), src, dst, class, flows));
    }
    TrafficMatrix::new(aggregates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fubar_topology::{generators, Bandwidth};

    fn he() -> fubar_topology::Topology {
        generators::he_core(Bandwidth::from_mbps(100.0))
    }

    #[test]
    fn paper_count_is_961() {
        let m = generate(&he(), &WorkloadConfig::default(), 1);
        assert_eq!(m.len(), 961, "31^2 aggregates, as in the paper");
    }

    #[test]
    fn without_intra_pop_930() {
        let cfg = WorkloadConfig {
            include_intra_pop: false,
            ..Default::default()
        };
        let m = generate(&he(), &cfg, 1);
        assert_eq!(m.len(), 930);
        assert!(m.iter().all(|a| !a.is_intra_pop()));
    }

    #[test]
    fn intra_region_only_keeps_pairs_inside_regions() {
        let topo = generators::hypergrowth(4, 4, Bandwidth::from_mbps(10.0));
        let cfg = WorkloadConfig {
            intra_region_only: true,
            ..Default::default()
        };
        let m = generate(&topo, &cfg, 3);
        // 4 regions × 4² ordered intra-region pairs.
        assert_eq!(m.len(), 4 * 16);
        for a in m.iter() {
            let s = topo.node_name(a.ingress);
            let d = topo.node_name(a.egress);
            assert_eq!(s.split('_').next(), d.split('_').next(), "{s} -> {d}");
        }
        // On a flat topology (no `_` in names) only intra-POP pairs
        // survive.
        let flat = generate(&he(), &cfg, 3);
        assert_eq!(flat.len(), 31);
        assert!(flat.iter().all(|a| a.is_intra_pop()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&he(), &WorkloadConfig::default(), 42);
        let b = generate(&he(), &WorkloadConfig::default(), 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.flow_count, y.flow_count);
            assert_eq!(x.ingress, y.ingress);
            assert_eq!(x.egress, y.egress);
        }
        let c = generate(&he(), &WorkloadConfig::default(), 43);
        let differs = a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.class != y.class || x.flow_count != y.flow_count);
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn large_fraction_is_about_two_percent() {
        // Average over several seeds to keep the test robust.
        let mut large = 0usize;
        let mut total = 0usize;
        for seed in 0..20 {
            let m = generate(&he(), &WorkloadConfig::default(), seed);
            large += m.large_ids().len();
            total += m.len();
        }
        let frac = large as f64 / total as f64;
        assert!(
            (0.012..0.03).contains(&frac),
            "large fraction {frac} should be near 0.02"
        );
    }

    #[test]
    fn classes_split_roughly_evenly() {
        let m = generate(&he(), &WorkloadConfig::default(), 5);
        let (rt, bulk, _) = m.class_census();
        let ratio = rt as f64 / (rt + bulk) as f64;
        assert!((0.42..0.58).contains(&ratio), "rt ratio {ratio}");
    }

    #[test]
    fn flow_counts_respect_ranges() {
        let cfg = WorkloadConfig::default();
        let m = generate(&he(), &cfg, 9);
        for a in m.iter() {
            if a.is_large() {
                assert!((cfg.large_flow_count.0..=cfg.large_flow_count.1).contains(&a.flow_count));
            } else {
                assert!((cfg.flow_count.0..=cfg.flow_count.1).contains(&a.flow_count));
            }
        }
    }

    #[test]
    fn large_peaks_come_from_the_menu() {
        for seed in 0..5 {
            let m = generate(&he(), &WorkloadConfig::default(), seed);
            for id in m.large_ids() {
                let a = m.aggregate(id);
                let peak = a.per_flow_demand().mbps();
                assert!(
                    (peak - 1.0).abs() < 1e-9 || (peak - 2.0).abs() < 1e-9,
                    "unexpected large peak {peak}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let cfg = WorkloadConfig {
            large_probability: 1.5,
            ..Default::default()
        };
        generate(&he(), &cfg, 0);
    }

    #[test]
    fn gravity_matches_target_demand_roughly() {
        let t = he();
        let cfg = GravityConfig::default();
        let m = generate_gravity(&t, &cfg, 3);
        assert_eq!(m.len(), 930, "all ordered pairs, no intra-POP");
        let total = m.total_demand().bps();
        let target = cfg.total_demand.bps();
        // Flow-count rounding perturbs the total; it must stay close.
        assert!(
            (total - target).abs() / target < 0.15,
            "total {total} vs target {target}"
        );
    }

    #[test]
    fn gravity_concentrates_on_hubs() {
        let t = he();
        let m = generate_gravity(&t, &GravityConfig::default(), 3);
        // Frankfurt (degree 7) pairs should out-demand Singapore (degree
        // 2) pairs on average.
        let hub = t.node("Frankfurt").unwrap();
        let leaf = t.node("Singapore").unwrap();
        let mean_demand = |n: fubar_graph::NodeId| {
            let (sum, count) = m
                .iter()
                .filter(|a| a.ingress == n)
                .fold((0.0, 0usize), |(s, c), a| {
                    (s + a.total_demand().bps(), c + 1)
                });
            sum / count as f64
        };
        assert!(
            mean_demand(hub) > 2.0 * mean_demand(leaf),
            "hub demand should dominate leaf demand"
        );
    }

    #[test]
    fn gravity_is_deterministic() {
        let t = he();
        let a = generate_gravity(&t, &GravityConfig::default(), 11);
        let b = generate_gravity(&t, &GravityConfig::default(), 11);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.flow_count, y.flow_count);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gravity_rejects_bad_config() {
        let t = he();
        let cfg = GravityConfig {
            real_time_fraction: -0.5,
            ..Default::default()
        };
        generate_gravity(&t, &cfg, 0);
    }
}
