//! Traffic classes and their preset utility functions.
//!
//! The paper's evaluation (§3) draws every aggregate's utility function
//! from three archetypes:
//!
//! * **real-time** (Fig 1): needs little bandwidth (saturates at
//!   50 kb/s per flow) but is sharply delay-sensitive — utility hits zero
//!   beyond 100 ms;
//! * **bulk transfer** (Fig 2): wants more bandwidth per flow and
//!   tolerates "relatively large variations in delay" (the default delay
//!   curve "slowly decays to zero as delay increases to a few seconds",
//!   §2.2);
//! * **large file transfer**: the 2 %-probability heavy hitters "with a
//!   higher max bandwidth (1 or 2 Mbps)".

use crate::function::{BandwidthUtility, DelayUtility, UtilityFunction};
use fubar_topology::{Bandwidth, Delay};
use std::fmt;

/// Per-flow demand peak of the real-time class (Fig 1: 50 kb/s).
pub const REAL_TIME_PEAK: f64 = 50.0; // kb/s
/// Delay at which real-time utility starts degrading.
pub const REAL_TIME_DELAY_KNEE_MS: f64 = 10.0;
/// Delay at which real-time utility reaches zero (Fig 1: 100 ms).
pub const REAL_TIME_DELAY_ZERO_MS: f64 = 100.0;

/// Per-flow demand peak of the bulk class (Fig 2's inflection point).
pub const BULK_PEAK: f64 = 120.0; // kb/s
/// Delay at which bulk utility starts degrading.
pub const BULK_DELAY_KNEE_MS: f64 = 50.0;
/// Delay at which bulk utility reaches zero ("a few seconds", §2.2).
pub const BULK_DELAY_ZERO_MS: f64 = 2_000.0;

/// The application class of a traffic aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficClass {
    /// Interactive/real-time traffic (VoIP, videoconferencing).
    RealTime,
    /// Ordinary bulk transfers (web, streaming at bounded bitrate).
    BulkTransfer,
    /// Heavy file-transfer aggregates with a per-flow demand peak of
    /// `peak_mbps` megabits per second (the paper draws 1 or 2).
    LargeFile {
        /// Per-flow demand peak in Mb/s.
        peak_mbps: f64,
    },
}

impl TrafficClass {
    /// The preset utility function for this class (Figs 1–2).
    pub fn utility(&self) -> UtilityFunction {
        match *self {
            TrafficClass::RealTime => UtilityFunction::new(
                BandwidthUtility::ramp(Bandwidth::from_kbps(REAL_TIME_PEAK)),
                DelayUtility::ramp(
                    Delay::from_ms(REAL_TIME_DELAY_KNEE_MS),
                    Delay::from_ms(REAL_TIME_DELAY_ZERO_MS),
                ),
            ),
            TrafficClass::BulkTransfer => UtilityFunction::new(
                BandwidthUtility::ramp(Bandwidth::from_kbps(BULK_PEAK)),
                DelayUtility::ramp(
                    Delay::from_ms(BULK_DELAY_KNEE_MS),
                    Delay::from_ms(BULK_DELAY_ZERO_MS),
                ),
            ),
            TrafficClass::LargeFile { peak_mbps } => UtilityFunction::new(
                BandwidthUtility::ramp(Bandwidth::from_mbps(peak_mbps)),
                DelayUtility::ramp(
                    Delay::from_ms(BULK_DELAY_KNEE_MS),
                    Delay::from_ms(BULK_DELAY_ZERO_MS),
                ),
            ),
        }
    }

    /// True for the heavy file-transfer class — the "large flows" whose
    /// utility the paper plots separately (Figs 3–5, middle panels).
    pub fn is_large(&self) -> bool {
        matches!(self, TrafficClass::LargeFile { .. })
    }

    /// True for delay-sensitive classes, for which operators may specify
    /// a non-default delay curve (§2.2).
    pub fn is_delay_sensitive(&self) -> bool {
        matches!(self, TrafficClass::RealTime)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::RealTime => write!(f, "real-time"),
            TrafficClass::BulkTransfer => write!(f, "bulk"),
            TrafficClass::LargeFile { peak_mbps } => write!(f, "large-file({peak_mbps}Mbps)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_matches_fig1() {
        let u = TrafficClass::RealTime.utility();
        assert_eq!(u.peak_demand(), Bandwidth::from_kbps(50.0));
        // Utility zero beyond 100 ms regardless of bandwidth.
        assert_eq!(
            u.eval(Bandwidth::from_mbps(10.0), Delay::from_ms(101.0)),
            0.0
        );
        // Comfortable at low delay with full bandwidth.
        assert_eq!(u.eval(Bandwidth::from_kbps(50.0), Delay::from_ms(5.0)), 1.0);
    }

    #[test]
    fn bulk_matches_fig2() {
        let u = TrafficClass::BulkTransfer.utility();
        assert_eq!(u.peak_demand(), Bandwidth::from_kbps(BULK_PEAK));
        // Tolerates 200 ms with only mild degradation...
        let at_200ms = u.eval(Bandwidth::from_kbps(BULK_PEAK), Delay::from_ms(200.0));
        assert!(at_200ms > 0.85, "bulk at 200ms = {at_200ms}");
        // ...but does decay to zero at multi-second delays.
        assert_eq!(
            u.eval(Bandwidth::from_kbps(BULK_PEAK), Delay::from_secs(2.5)),
            0.0
        );
    }

    #[test]
    fn bulk_needs_more_bandwidth_than_real_time() {
        let rt = TrafficClass::RealTime.utility().peak_demand();
        let bulk = TrafficClass::BulkTransfer.utility().peak_demand();
        assert!(bulk > rt);
    }

    #[test]
    fn large_file_peaks_at_given_mbps() {
        for peak in [1.0, 2.0] {
            let u = TrafficClass::LargeFile { peak_mbps: peak }.utility();
            assert_eq!(u.peak_demand(), Bandwidth::from_mbps(peak));
        }
    }

    #[test]
    fn class_predicates() {
        assert!(TrafficClass::LargeFile { peak_mbps: 1.0 }.is_large());
        assert!(!TrafficClass::BulkTransfer.is_large());
        assert!(TrafficClass::RealTime.is_delay_sensitive());
        assert!(!TrafficClass::LargeFile { peak_mbps: 2.0 }.is_delay_sensitive());
    }

    #[test]
    fn real_time_is_more_delay_sensitive_than_bulk() {
        let rt = TrafficClass::RealTime.utility();
        let bulk = TrafficClass::BulkTransfer.utility();
        let d = Delay::from_ms(150.0);
        assert!(rt.max_at_delay(d) < bulk.max_at_delay(d));
    }

    #[test]
    fn display_labels() {
        assert_eq!(TrafficClass::RealTime.to_string(), "real-time");
        assert_eq!(TrafficClass::BulkTransfer.to_string(), "bulk");
        assert_eq!(
            TrafficClass::LargeFile { peak_mbps: 2.0 }.to_string(),
            "large-file(2Mbps)"
        );
    }
}
