//! Monotone piecewise-linear curves on `[0, ∞) → [0, 1]`.
//!
//! The paper deliberately picks shapes "defined by the fewest points"
//! (§2.2): a utility component is fully described by a handful of
//! `(x, y)` knots, linearly interpolated, clamped flat beyond the ends.
//! FUBAR only needs evaluation, the location of the peak (the *demand*
//! used by the flow model), and rescaling of the x-axis (the delay-
//! relaxation experiment of Fig 6).

use std::fmt;

/// Errors from [`PiecewiseLinear::new`].
#[derive(Clone, Debug, PartialEq)]
pub enum CurveError {
    /// Fewer than one knot.
    Empty,
    /// Knot x-coordinates must be strictly increasing.
    NonIncreasingX {
        /// Index of the offending knot.
        at: usize,
    },
    /// Knot values must lie in `[0, 1]` and be finite.
    ValueOutOfRange {
        /// Index of the offending knot.
        at: usize,
    },
    /// x-coordinates must be finite and non-negative.
    BadX {
        /// Index of the offending knot.
        at: usize,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "curve needs at least one knot"),
            CurveError::NonIncreasingX { at } => {
                write!(f, "knot {at}: x must be strictly increasing")
            }
            CurveError::ValueOutOfRange { at } => {
                write!(f, "knot {at}: y must be finite and in [0,1]")
            }
            CurveError::BadX { at } => {
                write!(f, "knot {at}: x must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for CurveError {}

/// A piecewise-linear function defined by `(x, y)` knots with strictly
/// increasing `x` and `y ∈ [0, 1]`. Left of the first knot it evaluates
/// to the first `y`; right of the last knot, to the last `y`.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a curve after validating the knots.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, CurveError> {
        if knots.is_empty() {
            return Err(CurveError::Empty);
        }
        for (i, &(x, y)) in knots.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(CurveError::BadX { at: i });
            }
            if !y.is_finite() || !(0.0..=1.0).contains(&y) {
                return Err(CurveError::ValueOutOfRange { at: i });
            }
            if i > 0 && x <= knots[i - 1].0 {
                return Err(CurveError::NonIncreasingX { at: i });
            }
        }
        Ok(PiecewiseLinear { knots })
    }

    /// The constant-1 curve (an application indifferent to this axis).
    pub fn one() -> Self {
        PiecewiseLinear {
            knots: vec![(0.0, 1.0)],
        }
    }

    /// A ramp from `(0, 0)` up to `(peak_x, 1)`, flat afterwards — the
    /// canonical bandwidth component.
    ///
    /// # Panics
    ///
    /// Panics when `peak_x` is not strictly positive.
    pub fn ramp_up(peak_x: f64) -> Self {
        assert!(
            peak_x > 0.0 && peak_x.is_finite(),
            "ramp peak must be positive"
        );
        PiecewiseLinear {
            knots: vec![(0.0, 0.0), (peak_x, 1.0)],
        }
    }

    /// Flat at 1 until `knee_x`, then linearly down to 0 at `zero_x` —
    /// the canonical delay component.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= knee_x < zero_x`.
    pub fn ramp_down(knee_x: f64, zero_x: f64) -> Self {
        assert!(
            knee_x >= 0.0 && zero_x > knee_x && zero_x.is_finite(),
            "need 0 <= knee < zero, got knee={knee_x} zero={zero_x}"
        );
        let knots = if knee_x == 0.0 {
            vec![(0.0, 1.0), (zero_x, 0.0)]
        } else {
            vec![(0.0, 1.0), (knee_x, 1.0), (zero_x, 0.0)]
        };
        PiecewiseLinear { knots }
    }

    /// Evaluates the curve at `x` (clamped to the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x.is_finite() && x >= 0.0, "curve input {x} invalid");
        let k = &self.knots;
        if x <= k[0].0 {
            return k[0].1;
        }
        if x >= k[k.len() - 1].0 {
            return k[k.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = k.partition_point(|&(kx, _)| kx <= x);
        let (x0, y0) = k[idx - 1];
        let (x1, y1) = k[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The maximum y over all knots.
    pub fn max_value(&self) -> f64 {
        self.knots.iter().map(|&(_, y)| y).fold(0.0, f64::max)
    }

    /// The smallest x at which the curve attains its maximum — for a
    /// bandwidth component this is the *demand peak* (paper §2.3: the
    /// rate beyond which the application cannot use more).
    pub fn first_x_at_max(&self) -> f64 {
        let m = self.max_value();
        self.knots
            .iter()
            .find(|&&(_, y)| y == m)
            .map(|&(x, _)| x)
            .expect("non-empty curve has a max")
    }

    /// Returns a copy with every knot's x multiplied by `factor` — the
    /// paper's "double the delay parameter" experiment (Fig 6).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not strictly positive.
    pub fn scale_x(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        PiecewiseLinear {
            knots: self.knots.iter().map(|&(x, y)| (x * factor, y)).collect(),
        }
    }

    /// The knots, for plotting / serialization.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// True if `eval` never decreases as x grows.
    pub fn is_non_decreasing(&self) -> bool {
        self.knots.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// True if `eval` never increases as x grows.
    pub fn is_non_increasing(&self) -> bool {
        self.knots.windows(2).all(|w| w[0].1 >= w[1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_up_shape() {
        let c = PiecewiseLinear::ramp_up(50.0);
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(25.0), 0.5);
        assert_eq!(c.eval(50.0), 1.0);
        assert_eq!(c.eval(500.0), 1.0, "clamped past the peak");
        assert_eq!(c.first_x_at_max(), 50.0);
        assert!(c.is_non_decreasing());
    }

    #[test]
    fn ramp_down_shape() {
        let c = PiecewiseLinear::ramp_down(20.0, 100.0);
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(20.0), 1.0);
        assert_eq!(c.eval(60.0), 0.5);
        assert_eq!(c.eval(100.0), 0.0);
        assert_eq!(c.eval(1e6), 0.0);
        assert!(c.is_non_increasing());
    }

    #[test]
    fn ramp_down_without_knee() {
        let c = PiecewiseLinear::ramp_down(0.0, 10.0);
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(5.0), 0.5);
    }

    #[test]
    fn constant_one() {
        let c = PiecewiseLinear::one();
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(1e9), 1.0);
        assert!(c.is_non_decreasing() && c.is_non_increasing());
    }

    #[test]
    fn general_curve_interpolates() {
        let c = PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 0.8), (20.0, 1.0)]).unwrap();
        assert!((c.eval(5.0) - 0.4).abs() < 1e-12);
        assert!((c.eval(15.0) - 0.9).abs() < 1e-12);
        assert_eq!(c.first_x_at_max(), 20.0);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(PiecewiseLinear::new(vec![]), Err(CurveError::Empty));
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]),
            Err(CurveError::NonIncreasingX { at: 1 })
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 1.5)]),
            Err(CurveError::ValueOutOfRange { at: 0 })
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(-1.0, 0.5)]),
            Err(CurveError::BadX { at: 0 })
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, f64::NAN)]),
            Err(CurveError::ValueOutOfRange { at: 0 })
        );
    }

    #[test]
    fn scale_x_stretches() {
        let c = PiecewiseLinear::ramp_down(20.0, 100.0);
        let d = c.scale_x(2.0);
        assert_eq!(d.eval(40.0), 1.0);
        assert_eq!(d.eval(200.0), 0.0);
        assert_eq!(d.eval(120.0), c.eval(60.0));
    }

    #[test]
    fn first_x_at_max_on_plateau_is_leftmost() {
        let c =
            PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 1.0), (20.0, 1.0), (30.0, 0.5)]).unwrap();
        assert_eq!(c.first_x_at_max(), 10.0);
    }
}
