//! The two-axis utility function of paper §2.2.
//!
//! "In FUBAR each flow is associated with a utility function which
//! provides a mapping from bandwidth and delay to a single unitless real
//! number in the range [0−1]" — the bandwidth component and the delay
//! component "are multiplied together to form the final utility."

use crate::curve::PiecewiseLinear;
use fubar_topology::{Bandwidth, Delay};

/// The bandwidth axis of a utility function. The x-axis is the rate a
/// single flow receives, in bits per second.
#[derive(Clone, Debug, PartialEq)]
pub struct BandwidthUtility {
    curve: PiecewiseLinear,
}

impl BandwidthUtility {
    /// Wraps an arbitrary non-decreasing curve (x in bits/s).
    ///
    /// # Panics
    ///
    /// Panics if the curve decreases anywhere: more bandwidth can never
    /// make an application less happy.
    pub fn from_curve(curve: PiecewiseLinear) -> Self {
        assert!(
            curve.is_non_decreasing(),
            "bandwidth utility must be non-decreasing"
        );
        BandwidthUtility { curve }
    }

    /// The paper's canonical shape: utility grows linearly from 0 and
    /// "maxes out" at `peak` (Figs 1–2).
    pub fn ramp(peak: Bandwidth) -> Self {
        BandwidthUtility {
            curve: PiecewiseLinear::ramp_up(peak.bps()),
        }
    }

    /// Utility of a single flow receiving `rate`.
    #[inline]
    pub fn eval(&self, rate: Bandwidth) -> f64 {
        self.curve.eval(rate.bps())
    }

    /// The *demand peak*: the smallest rate at which utility saturates.
    /// This is the per-flow demand the traffic model fills toward
    /// (paper §2.3: "obtained from the peak of the bandwidth component").
    pub fn peak_demand(&self) -> Bandwidth {
        Bandwidth::from_bps(self.curve.first_x_at_max())
    }

    /// Replaces the demand peak, keeping the ramp shape. Used by the
    /// measurement-driven inflection inference (paper §2.2).
    pub fn with_peak(&self, peak: Bandwidth) -> Self {
        Self::ramp(peak)
    }

    /// Underlying curve (for plotting, e.g. regenerating Figs 1–2).
    pub fn curve(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

/// The delay axis of a utility function. The x-axis is the one-way path
/// delay experienced by the flow, in seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayUtility {
    curve: PiecewiseLinear,
}

impl DelayUtility {
    /// Wraps an arbitrary non-increasing curve (x in seconds).
    ///
    /// # Panics
    ///
    /// Panics if the curve increases anywhere: more delay can never make
    /// an application happier.
    pub fn from_curve(curve: PiecewiseLinear) -> Self {
        assert!(
            curve.is_non_increasing(),
            "delay utility must be non-increasing"
        );
        DelayUtility { curve }
    }

    /// Flat at 1 until `knee`, then linear to 0 at `zero` — the shape of
    /// Figs 1–2.
    pub fn ramp(knee: Delay, zero: Delay) -> Self {
        DelayUtility {
            curve: PiecewiseLinear::ramp_down(knee.secs(), zero.secs()),
        }
    }

    /// Indifferent to delay (utility 1 everywhere). Useful for pure
    /// throughput experiments.
    pub fn indifferent() -> Self {
        DelayUtility {
            curve: PiecewiseLinear::one(),
        }
    }

    /// Utility multiplier for a flow experiencing `delay`.
    #[inline]
    pub fn eval(&self, delay: Delay) -> f64 {
        self.curve.eval(delay.secs())
    }

    /// Stretches the delay axis by `factor` — the paper's relaxed-delay
    /// experiment runs "small flows using double the delay parameter"
    /// (Fig 6), i.e. `relaxed(2.0)`.
    pub fn relaxed(&self, factor: f64) -> Self {
        DelayUtility {
            curve: self.curve.scale_x(factor),
        }
    }

    /// Underlying curve (for plotting).
    pub fn curve(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

/// A complete utility function: `U(bw, d) = U_bw(bw) · U_delay(d)`.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilityFunction {
    bandwidth: BandwidthUtility,
    delay: DelayUtility,
}

impl UtilityFunction {
    /// Combines the two components.
    pub fn new(bandwidth: BandwidthUtility, delay: DelayUtility) -> Self {
        UtilityFunction { bandwidth, delay }
    }

    /// Utility of a single flow at (`rate`, `delay`). Always in [0, 1].
    #[inline]
    pub fn eval(&self, rate: Bandwidth, delay: Delay) -> f64 {
        self.bandwidth.eval(rate) * self.delay.eval(delay)
    }

    /// The per-flow demand peak (see [`BandwidthUtility::peak_demand`]).
    pub fn peak_demand(&self) -> Bandwidth {
        self.bandwidth.peak_demand()
    }

    /// The best utility attainable at a given delay, i.e. with bandwidth
    /// fully satisfied. Used by the per-aggregate isolation upper bound.
    pub fn max_at_delay(&self, delay: Delay) -> f64 {
        self.delay.eval(delay)
    }

    /// Bandwidth component.
    pub fn bandwidth(&self) -> &BandwidthUtility {
        &self.bandwidth
    }

    /// Delay component.
    pub fn delay(&self) -> &DelayUtility {
        &self.delay
    }

    /// A copy with the delay axis stretched by `factor` (Fig 6).
    pub fn with_relaxed_delay(&self, factor: f64) -> Self {
        UtilityFunction {
            bandwidth: self.bandwidth.clone(),
            delay: self.delay.relaxed(factor),
        }
    }

    /// A copy with a new bandwidth demand peak (inference updates).
    pub fn with_peak_demand(&self, peak: Bandwidth) -> Self {
        UtilityFunction {
            bandwidth: self.bandwidth.with_peak(peak),
            delay: self.delay.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kbps(v: f64) -> Bandwidth {
        Bandwidth::from_kbps(v)
    }
    fn ms(v: f64) -> Delay {
        Delay::from_ms(v)
    }

    /// Figure 1's real-time function: bandwidth ramps to 1 at 50 kb/s,
    /// delay drops to 0 at 100 ms.
    fn fig1() -> UtilityFunction {
        UtilityFunction::new(
            BandwidthUtility::ramp(kbps(50.0)),
            DelayUtility::ramp(ms(10.0), ms(100.0)),
        )
    }

    #[test]
    fn components_multiply() {
        let u = fig1();
        // Half the bandwidth, comfortable delay: 0.5 * 1.0.
        assert!((u.eval(kbps(25.0), ms(5.0)) - 0.5).abs() < 1e-12);
        // Full bandwidth, half-dead delay: 1.0 * 0.5.
        assert!((u.eval(kbps(50.0), ms(55.0)) - 0.5).abs() < 1e-12);
        // Both degraded: product.
        assert!((u.eval(kbps(25.0), ms(55.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_bandwidth_means_zero_utility() {
        let u = fig1();
        assert_eq!(u.eval(Bandwidth::ZERO, ms(0.0)), 0.0);
    }

    #[test]
    fn delay_past_cutoff_means_zero_utility() {
        let u = fig1();
        assert_eq!(u.eval(kbps(1000.0), ms(150.0)), 0.0);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let u = fig1();
        for &bw in &[0.0, 10.0, 50.0, 500.0] {
            for &d in &[0.0, 50.0, 100.0, 5000.0] {
                let v = u.eval(kbps(bw), ms(d));
                assert!((0.0..=1.0).contains(&v), "u({bw}kbps,{d}ms) = {v}");
            }
        }
    }

    #[test]
    fn peak_demand_is_the_inflection_point() {
        assert_eq!(fig1().peak_demand(), kbps(50.0));
    }

    #[test]
    fn max_at_delay_ignores_bandwidth() {
        let u = fig1();
        assert_eq!(u.max_at_delay(ms(5.0)), 1.0);
        assert!((u.max_at_delay(ms(55.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relaxed_delay_doubles_the_axis() {
        let u = fig1().with_relaxed_delay(2.0);
        // Old zero point (100ms) now gives 0.5.
        assert!((u.eval(kbps(50.0), ms(110.0)) - 0.5).abs() < 1e-12);
        assert_eq!(u.eval(kbps(50.0), ms(200.0)), 0.0);
        // Bandwidth axis untouched.
        assert_eq!(u.peak_demand(), kbps(50.0));
    }

    #[test]
    fn with_peak_demand_rescales_bandwidth_only() {
        let u = fig1().with_peak_demand(kbps(100.0));
        assert_eq!(u.peak_demand(), kbps(100.0));
        assert!((u.eval(kbps(50.0), ms(0.0)) - 0.5).abs() < 1e-12);
        assert_eq!(u.eval(kbps(100.0), ms(150.0)), 0.0, "delay curve unchanged");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_bandwidth_curve_rejected() {
        BandwidthUtility::from_curve(crate::curve::PiecewiseLinear::ramp_down(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn increasing_delay_curve_rejected() {
        DelayUtility::from_curve(crate::curve::PiecewiseLinear::ramp_up(10.0));
    }

    #[test]
    fn indifferent_delay_component() {
        let u = UtilityFunction::new(
            BandwidthUtility::ramp(kbps(10.0)),
            DelayUtility::indifferent(),
        );
        assert_eq!(u.eval(kbps(10.0), Delay::from_secs(30.0)), 1.0);
    }
}
