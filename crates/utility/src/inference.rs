//! Measurement-driven inference of the bandwidth inflection point.
//!
//! Paper §2.2: "we rely on continuous traffic measurements to scale the
//! bandwidth component as needed. We can infer the inflection point of
//! the bandwidth curve when an aggregate is using an uncongested path and
//! fails to utilize it."
//!
//! The estimator consumes periodic per-flow rate observations tagged with
//! whether the aggregate's paths were congested at measurement time:
//!
//! * **uncongested** samples are direct evidence of the application's
//!   actual demand — the estimator tracks an exponentially weighted
//!   moving maximum of them;
//! * **congested** samples only lower-bound demand (the network, not the
//!   application, was the limit), so they can push the estimate *up* but
//!   never down.
//!
//! [`InflectionEstimator::estimate`] then yields a demand peak with a
//! small headroom factor, suitable for
//! [`UtilityFunction::with_peak_demand`](crate::UtilityFunction::with_peak_demand).

use fubar_topology::Bandwidth;

/// Online estimator of a traffic aggregate's per-flow demand peak.
#[derive(Clone, Debug)]
pub struct InflectionEstimator {
    /// Smoothed estimate of the uncongested per-flow rate, bps.
    smoothed: Option<f64>,
    /// Highest rate ever observed (congested or not), bps.
    observed_max: f64,
    /// EWMA gain for new uncongested samples, in (0, 1].
    gain: f64,
    /// Multiplicative headroom applied by [`Self::estimate`].
    headroom: f64,
    samples: u64,
}

impl Default for InflectionEstimator {
    fn default() -> Self {
        Self::new(0.3, 1.1)
    }
}

impl InflectionEstimator {
    /// Creates an estimator with the given EWMA `gain` (0 < gain ≤ 1) and
    /// multiplicative `headroom` (≥ 1) on the reported peak.
    ///
    /// # Panics
    ///
    /// Panics when parameters are out of range.
    pub fn new(gain: f64, headroom: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0,1]");
        assert!(headroom >= 1.0, "headroom must be >= 1");
        InflectionEstimator {
            smoothed: None,
            observed_max: 0.0,
            gain,
            headroom,
            samples: 0,
        }
    }

    /// Feeds one measurement of the aggregate's *per-flow* rate.
    /// `congested` must be true when any link on the aggregate's paths
    /// was congested during the measurement interval.
    pub fn observe(&mut self, per_flow_rate: Bandwidth, congested: bool) {
        let r = per_flow_rate.bps();
        self.samples += 1;
        self.observed_max = self.observed_max.max(r);
        if congested {
            // A congested sample can only raise the estimate: the app
            // proved it can use at least this much.
            if let Some(s) = self.smoothed {
                if r > s {
                    self.smoothed = Some(r);
                }
            }
            return;
        }
        self.smoothed = Some(match self.smoothed {
            None => r,
            Some(s) => s + self.gain * (r - s),
        });
    }

    /// The current demand-peak estimate, or `None` before any uncongested
    /// observation has arrived (congested-only evidence is not enough to
    /// *shrink* a configured peak, per the paper's one-sided inference).
    pub fn estimate(&self) -> Option<Bandwidth> {
        self.smoothed
            .map(|s| Bandwidth::from_bps(s * self.headroom))
    }

    /// The largest rate ever seen, congested or not.
    pub fn observed_max(&self) -> Bandwidth {
        Bandwidth::from_bps(self.observed_max)
    }

    /// Number of samples consumed.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kbps(v: f64) -> Bandwidth {
        Bandwidth::from_kbps(v)
    }

    #[test]
    fn no_estimate_before_uncongested_evidence() {
        let mut e = InflectionEstimator::default();
        e.observe(kbps(40.0), true);
        e.observe(kbps(45.0), true);
        assert_eq!(e.estimate(), None);
        assert_eq!(e.observed_max(), kbps(45.0));
    }

    #[test]
    fn converges_to_uncongested_usage() {
        let mut e = InflectionEstimator::new(0.5, 1.0);
        for _ in 0..20 {
            e.observe(kbps(30.0), false);
        }
        let est = e.estimate().unwrap();
        assert!((est.kbps() - 30.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn headroom_is_applied() {
        let mut e = InflectionEstimator::new(1.0, 1.2);
        e.observe(kbps(100.0), false);
        assert!((e.estimate().unwrap().kbps() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn congested_samples_never_shrink_the_estimate() {
        let mut e = InflectionEstimator::new(1.0, 1.0);
        e.observe(kbps(50.0), false);
        e.observe(kbps(10.0), true); // starved by the network, not the app
        assert_eq!(e.estimate().unwrap(), kbps(50.0));
    }

    #[test]
    fn congested_samples_can_raise_it() {
        let mut e = InflectionEstimator::new(1.0, 1.0);
        e.observe(kbps(50.0), false);
        e.observe(kbps(80.0), true); // proved it can push 80 even congested
        assert_eq!(e.estimate().unwrap(), kbps(80.0));
    }

    #[test]
    fn shrinks_when_uncongested_usage_drops() {
        let mut e = InflectionEstimator::new(0.5, 1.0);
        e.observe(kbps(100.0), false);
        for _ in 0..30 {
            e.observe(kbps(20.0), false);
        }
        let est = e.estimate().unwrap();
        assert!(
            est.kbps() < 21.0,
            "estimate should track the drop, got {est}"
        );
    }

    #[test]
    fn sample_count_tracks_everything() {
        let mut e = InflectionEstimator::default();
        e.observe(kbps(1.0), true);
        e.observe(kbps(1.0), false);
        assert_eq!(e.sample_count(), 2);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn zero_gain_rejected() {
        InflectionEstimator::new(0.0, 1.0);
    }
}
