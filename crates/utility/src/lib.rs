//! # fubar-utility
//!
//! Utility functions for the FUBAR reproduction (paper §2.2, Figs 1–2).
//!
//! FUBAR extends Shenker's notion of application utility to a function of
//! *both* bandwidth and delay: each flow maps `(rate, path delay)` to a
//! unitless value in `[0, 1]`, computed as the product of a non-decreasing
//! bandwidth component and a non-increasing delay component, each a
//! piecewise-linear curve "defined by the fewest points".
//!
//! * [`PiecewiseLinear`] — the curve primitive;
//! * [`BandwidthUtility`], [`DelayUtility`], [`UtilityFunction`] — the two
//!   components and their product;
//! * [`TrafficClass`] — the paper's three archetypes (real-time, bulk,
//!   large file transfer) with the Figs 1–2 presets;
//! * [`InflectionEstimator`] — measurement-driven re-fitting of the
//!   bandwidth inflection point (§2.2's "continuous traffic measurements").
//!
//! ```
//! use fubar_utility::TrafficClass;
//! use fubar_topology::{Bandwidth, Delay};
//!
//! let u = TrafficClass::RealTime.utility();
//! // Plenty of bandwidth but 150 ms of delay: useless for real-time.
//! assert_eq!(u.eval(Bandwidth::from_mbps(10.0), Delay::from_ms(150.0)), 0.0);
//! // 25 of the 50 kb/s it wants, at negligible delay: half-happy.
//! assert!((u.eval(Bandwidth::from_kbps(25.0), Delay::from_ms(1.0)) - 0.5).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]

mod classes;
mod curve;
mod function;
mod inference;

pub use classes::{
    TrafficClass, BULK_DELAY_KNEE_MS, BULK_DELAY_ZERO_MS, BULK_PEAK, REAL_TIME_DELAY_KNEE_MS,
    REAL_TIME_DELAY_ZERO_MS, REAL_TIME_PEAK,
};
pub use curve::{CurveError, PiecewiseLinear};
pub use function::{BandwidthUtility, DelayUtility, UtilityFunction};
pub use inference::InflectionEstimator;
