//! Property-based tests on utility-function invariants.

use fubar_topology::{Bandwidth, Delay};
use fubar_utility::{PiecewiseLinear, TrafficClass, UtilityFunction};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = TrafficClass> {
    prop_oneof![
        Just(TrafficClass::RealTime),
        Just(TrafficClass::BulkTransfer),
        (0.5f64..4.0).prop_map(|p| TrafficClass::LargeFile { peak_mbps: p }),
    ]
}

proptest! {
    /// Utility is always within [0,1] for all classes and inputs.
    #[test]
    fn utility_bounded(class in any_class(), bw_kbps in 0.0f64..10_000.0, d_ms in 0.0f64..10_000.0) {
        let u = class.utility();
        let v = u.eval(Bandwidth::from_kbps(bw_kbps), Delay::from_ms(d_ms));
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// More bandwidth never hurts; more delay never helps.
    #[test]
    fn utility_monotone(class in any_class(), bw in 0.0f64..5_000.0, extra_bw in 0.0f64..5_000.0,
                        d in 0.0f64..5_000.0, extra_d in 0.0f64..5_000.0) {
        let u = class.utility();
        let base = u.eval(Bandwidth::from_kbps(bw), Delay::from_ms(d));
        let more_bw = u.eval(Bandwidth::from_kbps(bw + extra_bw), Delay::from_ms(d));
        let more_delay = u.eval(Bandwidth::from_kbps(bw), Delay::from_ms(d + extra_d));
        prop_assert!(more_bw + 1e-12 >= base);
        prop_assert!(more_delay <= base + 1e-12);
    }

    /// At the demand peak and zero delay, utility is exactly 1 for all
    /// presets.
    #[test]
    fn saturates_at_peak(class in any_class()) {
        let u = class.utility();
        let v = u.eval(u.peak_demand(), Delay::ZERO);
        prop_assert!((v - 1.0).abs() < 1e-12);
    }

    /// Relaxing the delay axis never lowers utility at any point.
    #[test]
    fn relaxation_is_pointwise_better(class in any_class(), factor in 1.0f64..5.0,
                                      bw in 0.0f64..5_000.0, d in 0.0f64..5_000.0) {
        let u = class.utility();
        let relaxed = u.with_relaxed_delay(factor);
        let before = u.eval(Bandwidth::from_kbps(bw), Delay::from_ms(d));
        let after = relaxed.eval(Bandwidth::from_kbps(bw), Delay::from_ms(d));
        prop_assert!(after + 1e-12 >= before);
    }

    /// Arbitrary valid curves evaluate within the hull of their knot values.
    #[test]
    fn curve_eval_within_knot_range(
        raw in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1.0), 1..8),
        x in 0.0f64..2_000.0,
    ) {
        let mut knots = raw;
        knots.sort_by(|a, b| a.0.total_cmp(&b.0));
        knots.dedup_by(|a, b| a.0 == b.0);
        let lo = knots.iter().map(|k| k.1).fold(f64::INFINITY, f64::min);
        let hi = knots.iter().map(|k| k.1).fold(0.0, f64::max);
        let c = PiecewiseLinear::new(knots).unwrap();
        let v = c.eval(x);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// The product decomposition holds: U(bw,d) = U(bw,0) * U_delay(d)
    /// for presets whose delay curve is 1 at zero delay.
    #[test]
    fn product_decomposition(class in any_class(), bw in 0.0f64..5_000.0, d in 0.0f64..5_000.0) {
        let u: UtilityFunction = class.utility();
        let bw = Bandwidth::from_kbps(bw);
        let d = Delay::from_ms(d);
        let lhs = u.eval(bw, d);
        let rhs = u.eval(bw, Delay::ZERO) * u.max_at_delay(d);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
