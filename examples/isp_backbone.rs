//! The paper's headline scenario: optimize a 31-POP ISP backbone
//! carrying an all-pairs traffic matrix (961 aggregates), then compare
//! FUBAR against shortest-path routing and the isolation upper bound.
//!
//! This is the provisioned case of §3 (uniform 100 Mb/s links); pass a
//! different capacity in Mb/s as the first argument to explore other
//! regimes, e.g. `cargo run --release --example isp_backbone -- 75`.

use fubar::core::baselines;
use fubar::prelude::*;
use fubar::topology::generators;
use fubar::traffic::workload;

fn main() {
    let mbps: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let topo = generators::he_core(Bandwidth::from_mbps(mbps));
    let tm = workload::generate(&topo, &WorkloadConfig::default(), seed);
    println!("{}", topo.summary());
    println!(
        "{} aggregates ({} large), {} flows, demand {}",
        tm.len(),
        tm.large_ids().len(),
        tm.total_flows(),
        tm.total_demand()
    );

    let sp = baselines::shortest_path(&topo, &tm);
    println!(
        "shortest-path routing: utility {:.4}, {} congested links",
        sp.report.network_utility,
        sp.outcome.congested.len()
    );
    for &l in sp.outcome.congested.iter().take(5) {
        println!(
            "  hot: {} oversubscribed {:.2}x",
            topo.link_label(l),
            sp.outcome.oversubscription(l)
        );
    }

    let result = Optimizer::with_defaults(&topo, &tm).run();
    let last = result.trace.last().unwrap();
    println!(
        "FUBAR: utility {:.4} ({} moves, {:.1}s, {:?}), {} congested links",
        last.network_utility,
        result.commits,
        last.elapsed.as_secs_f64(),
        result.termination,
        last.congested_links
    );

    let ub = baselines::upper_bound(&topo, &tm);
    println!("isolation upper bound: {:.4}", ub.mean);
    println!(
        "FUBAR closes {:.1}% of the shortest-path-to-upper-bound gap",
        100.0 * (last.network_utility - sp.report.network_utility)
            / (ub.mean - sp.report.network_utility).max(1e-9)
    );
    println!(
        "utilization: actual {:.3}, demanded {:.3} (equal means congestion-free)",
        last.actual_utilization, last.demanded_utilization
    );
    println!(
        "largest path set: {} paths (paper: ~10-15)",
        result.allocation.max_path_set_size()
    );
}
