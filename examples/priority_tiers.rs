//! The Fig 5 knob: weighting classes of traffic differently in the
//! network-utility objective. Runs the same congested network three
//! times — neutral, large flows prioritized, large flows deprioritized —
//! and prints who wins and who pays.
//!
//! Run with: `cargo run --release --example priority_tiers`

use fubar::prelude::*;
use fubar::topology::generators;
use fubar::traffic::workload;

fn run(topo: &Topology, tm: &TrafficMatrix, label: &str) {
    let result = Optimizer::with_defaults(topo, tm).run();
    let last = result.trace.last().unwrap();
    println!(
        "{label:<22} network {:.4}  large {:.4}  small {:.4}  congested links {}",
        last.network_utility,
        last.large_utility.unwrap_or(f64::NAN),
        last.small_utility.unwrap_or(f64::NAN),
        last.congested_links
    );
}

fn main() {
    // An underprovisioned backbone: not everyone can be happy.
    let topo = generators::he_core(Bandwidth::from_mbps(75.0));
    let tm = workload::generate(&topo, &WorkloadConfig::default(), 5);
    println!(
        "{} — {} aggregates ({} large), demand {}",
        topo.summary(),
        tm.len(),
        tm.large_ids().len(),
        tm.total_demand()
    );
    println!("variant                 network   large    small   congestion");

    run(&topo, &tm, "neutral (weight 1)");
    run(&topo, &tm.with_large_priority(8.0), "large-priority (x8)");
    run(
        &topo,
        &tm.with_large_priority(0.125),
        "large-penalty (x1/8)",
    );

    println!();
    println!("expected shape (paper Fig 5): prioritizing large flows lifts their");
    println!("utility toward its peak at a ~1% cost to the numerous small flows,");
    println!("leaving overall utility roughly unchanged.");
}
