//! Quickstart: build a small network, describe its traffic, run FUBAR,
//! and inspect the routing it computed.
//!
//! Run with: `cargo run --release --example quickstart`

use fubar::prelude::*;

fn main() {
    // 1. Describe the physical network: four POPs in a square, with a
    //    cheap-but-thin direct link and roomier detours.
    let mut b = TopologyBuilder::new("quickstart");
    for name in ["paris", "london", "frankfurt", "amsterdam"] {
        b.add_node(name).unwrap();
    }
    let cap = |mbps: f64| Bandwidth::from_mbps(mbps);
    let ms = |v: f64| Delay::from_ms(v);
    b.add_duplex_link("paris", "london", cap(2.0), ms(4.0))
        .unwrap();
    b.add_duplex_link("paris", "frankfurt", cap(10.0), ms(6.0))
        .unwrap();
    b.add_duplex_link("frankfurt", "amsterdam", cap(10.0), ms(4.0))
        .unwrap();
    b.add_duplex_link("amsterdam", "london", cap(10.0), ms(4.0))
        .unwrap();
    let topo = b.build();
    println!("{}", topo.summary());

    // 2. Describe the traffic: one latency-sensitive videoconferencing
    //    aggregate and one heavy file-transfer aggregate, both
    //    paris -> london.
    let paris = topo.node("paris").unwrap();
    let london = topo.node("london").unwrap();
    let tm = TrafficMatrix::new(vec![
        Aggregate::new(AggregateId(0), paris, london, TrafficClass::RealTime, 20),
        Aggregate::new(
            AggregateId(0),
            paris,
            london,
            TrafficClass::LargeFile { peak_mbps: 1.0 },
            4,
        ),
    ]);
    println!(
        "traffic: {} aggregates, {} flows, total demand {}",
        tm.len(),
        tm.total_flows(),
        tm.total_demand()
    );

    // 3. Run FUBAR.
    let result = Optimizer::with_defaults(&topo, &tm).run();
    let initial = result.trace.initial().unwrap();
    let last = result.trace.last().unwrap();
    println!(
        "utility {:.3} -> {:.3} in {} moves ({:?})",
        initial.network_utility, last.network_utility, result.commits, result.termination
    );

    // 4. Inspect the computed routing.
    for a in tm.iter() {
        println!("aggregate {} ({}):", a.id, a.class);
        let ps = result.allocation.path_set(a.id);
        for (idx, path) in ps.iter().enumerate() {
            let flows = result.allocation.flows_on(a.id, idx);
            if flows > 0 {
                let hops: Vec<&str> = path.nodes().iter().map(|&n| topo.node_name(n)).collect();
                println!(
                    "  {flows:>3} flows via {} ({:.1} ms)",
                    hops.join("->"),
                    path.cost() * 1e3
                );
            }
        }
    }

    // The direct paris->london link is too thin for everyone: expect the
    // real-time flows to keep the 4 ms path while file transfers are
    // pushed onto the longer-but-roomier detour.
    assert!(last.network_utility >= initial.network_utility);
}
