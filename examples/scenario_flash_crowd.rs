//! Run the bundled `flash_crowd` scenario end to end and narrate it:
//! steady churn on Abilene, an 8x demand surge on NewYork->LosAngeles at
//! t=100s, operator-forced re-optimization, relaxation at t=200s.
//!
//! ```text
//! cargo run --release --example scenario_flash_crowd [seed]
//! ```
//!
//! The same seed always produces a byte-identical event log — pipe it to
//! a file and diff across runs or machines.

use fubar::scenario::{catalog, run};

fn main() {
    let spec = catalog::load("flash_crowd").expect("bundled scenario");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(spec.seed);

    println!("# spec\n{spec}");
    let log = run(&spec, seed).expect("flash_crowd builds on its own topology");

    // The headline trajectory: utility at every measurement epoch, with
    // markers where the interesting events landed.
    println!("# epoch utility trajectory");
    for r in &log.records {
        let interesting = r.what.starts_with("epoch")
            || r.what.starts_with("surge")
            || r.what.starts_with("relax")
            || r.commits.is_some();
        if interesting {
            println!("{}", r.to_line());
        }
    }

    println!("# summary");
    println!("{}", log.summary());
    let reopts: Vec<_> = log.records.iter().filter(|r| r.commits.is_some()).collect();
    for r in &reopts {
        println!(
            "reoptimize at t={:.0}s: {} commits ({}), utility {:.4}",
            r.time_s,
            r.commits.unwrap(),
            if r.warm { "warm" } else { "cold" },
            r.utility
        );
    }
    let warm_commits: usize = reopts
        .iter()
        .filter(|r| r.warm)
        .filter_map(|r| r.commits)
        .sum();
    let warm_count = reopts.iter().filter(|r| r.warm).count();
    if warm_count > 0 {
        println!(
            "warm runs averaged {:.1} commits",
            warm_commits as f64 / warm_count as f64
        );
    }
}
