//! The deployment story (paper §2.1, §5): FUBAR as a periodic offline
//! controller over a simulated SDN fabric, with noisy measurement,
//! demand drift, and a mid-run fiber cut.
//!
//! Run with: `cargo run --release --example sdn_closed_loop`

use fubar::prelude::*;
use fubar::sdn::{DriftConfig, FailureEvent, MeasurementConfig};
use fubar::topology::generators;
use fubar::traffic::workload;

fn main() {
    // A mid-size research backbone with tight links so the controller
    // has real work to do.
    let topo = generators::abilene(Bandwidth::from_mbps(3.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (3, 10),
            ..Default::default()
        },
        11,
    );
    println!("{}", topo.summary());
    println!("{} aggregates, demand {}", tm.len(), tm.total_demand());

    // Cut the Denver-KansasCity trunk at epoch 8, repair at epoch 14.
    let cut = topo
        .graph()
        .find_link(
            topo.node("Denver").unwrap(),
            topo.node("KansasCity").unwrap(),
        )
        .expect("abilene has this trunk");

    let fabric = Fabric::new(topo, tm, Delay::from_secs(30.0));
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            measurement: MeasurementConfig {
                noise_rel_std: 0.08,
                ..Default::default()
            },
            controller: FubarController {
                reoptimize_every: 3,
                warmup_epochs: 2,
                ..Default::default()
            },
            drift: Some(DriftConfig {
                max_step: 1,
                min_flows: 2,
                max_flows: 12,
            }),
            failures: vec![FailureEvent {
                fail_epoch: 8,
                repair_epoch: Some(14),
                link: cut,
            }],
            blackouts: Vec::new(),
            seed: 3,
        },
    );

    println!("epoch,utility,congested_links,failed_links,fallbacks,reoptimized");
    let log = sim.run(18);
    for r in &log {
        println!(
            "{},{:.4},{},{},{},{}",
            r.epoch.epoch,
            r.epoch.report.network_utility,
            r.epoch.outcome.congested.len(),
            r.failed_links,
            r.epoch.fallback_count,
            r.reoptimized
        );
    }

    let before_cut = log[7].epoch.report.network_utility;
    let during_cut = log[8].epoch.report.network_utility;
    let after_repair = log[16].epoch.report.network_utility;
    println!(
        "fiber cut at epoch 8: utility {before_cut:.4} -> {during_cut:.4} \
         (capacity is really gone; the controller reroutes so nothing \
         black-holes), back to {after_repair:.4} after the repair at epoch 14"
    );
    assert_eq!(
        log[9].epoch.fallback_count, 0,
        "first post-cut reoptimization must route around the failure"
    );
}
