//! What-if analysis: how much utility does the network lose if any
//! single trunk fails? Runs FUBAR once per single-link failure scenario
//! and ranks the most critical links — the kind of offline study the
//! paper's system enables for network operators.
//!
//! Run with: `cargo run --release --example whatif_failure`

use fubar::prelude::*;
use fubar::topology::generators;
use fubar::traffic::workload;

fn main() {
    let topo = generators::abilene(Bandwidth::from_mbps(3.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (3, 8),
            ..Default::default()
        },
        21,
    );
    println!("{}", topo.summary());

    let healthy = Optimizer::with_defaults(&topo, &tm).run();
    let base = healthy.report.network_utility;
    println!("healthy network utility: {base:.4}");
    println!();
    println!("single-trunk failure scan:");

    // One direction per duplex pair is enough (without_links cuts both).
    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    let mut seen = vec![false; topo.link_count()];
    for l in topo.links() {
        if seen[l.index()] {
            continue;
        }
        if let Some(r) = topo.reverse_of(l) {
            seen[r.index()] = true;
        }
        let cut = topo.without_links(&[l]);
        if !cut.is_connected() {
            rows.push((topo.link_label(l), f64::NAN, usize::MAX));
            continue;
        }
        // The traffic matrix references node ids, which without_links
        // preserves (nodes are copied in id order).
        let result = Optimizer::with_defaults(&cut, &tm).run();
        rows.push((
            topo.link_label(l),
            result.report.network_utility,
            result.outcome.congested.len(),
        ));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "{:<28} {:>9} {:>7} {:>10}",
        "failed trunk", "utility", "loss", "congested"
    );
    for (label, u, c) in &rows {
        if u.is_nan() {
            println!("{label:<28} {:>9} {:>7} {:>10}", "PARTITION", "-", "-");
        } else {
            println!("{label:<28} {u:>9.4} {:>7.4} {c:>10}", base - u);
        }
    }
}
