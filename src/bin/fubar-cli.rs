//! `fubar-cli` — drive the FUBAR optimizer from topology and
//! traffic-matrix text files (see `fubar_topology::format` and
//! `fubar_traffic::format` for the grammars).
//!
//! ```text
//! fubar-cli generate <he|abilene> <capacity_mbps> <seed>
//!     Emit a topology file and a matching workload matrix to
//!     ./<name>.topo and ./<name>.tm.
//!
//! fubar-cli evaluate <file.topo> <file.tm>
//!     Evaluate shortest-path routing (no optimization).
//!
//! fubar-cli optimize <file.topo> <file.tm> [--minmax] [--trace out.csv]
//!     Run FUBAR and print the computed path splits.
//!
//! fubar-cli topology list
//!     Name and summarize the bundled topology catalog (`topologies/`).
//!
//! fubar-cli topology show <name|file.topo>
//!     Print a topology (canonical serialization: raw-seconds delays,
//!     raw-bps capacities — the exactly round-tripping form).
//!
//! fubar-cli topology export <he|abilene|hypergrowth|planetary> <capacity_mbps> [out.topo]
//!     Export a generator topology to its canonical `.topo` form — how
//!     the generated entries of `topologies/` are produced. `planetary`
//!     is the 256-POP hierarchical tier (inter-region trunks at 4× the
//!     given capacity).
//!
//! fubar-cli topology validate <name|file.topo>...
//!     Parse each topology, require strong connectivity, and prove the
//!     `serialize ∘ parse` round trip is bitwise-exact (capacities,
//!     delays, names, link structure). CI runs this over every
//!     committed `.topo`.
//!
//! fubar-cli scenario list
//!     Name and describe the bundled scenario catalog.
//!
//! fubar-cli scenario show <name|file.scn>
//!     Print a scenario spec (canonical serialization).
//!
//! fubar-cli scenario run <name|file.scn> [--seed N] [--out log.txt]
//!                        [--oracle sharded|flat|full] [--stats]
//!                        [--fill-threads N] [--parallel-passes] [--pass-threads N]
//!     Run a scenario and emit the per-event log on stdout (or to
//!     --out). Same spec + same seed => byte-identical log. The
//!     catalog scales up to `hypergrowth` (4,096 aggregates on the
//!     64-POP tier) and `planetary` (65,536 aggregates on the 256-POP
//!     tier): incremental fabric measurement and the region-sharded
//!     optimizer keep whole runs tractable. `--oracle` picks the
//!     execution path: `sharded` (default) routes candidate scoring
//!     through per-region subproblems, `flat` runs the same
//!     incremental loop unsharded (the `sharded ≡ flat` oracle), and
//!     `full` forces full-recompute measurement *and* scoring on every
//!     probe. All three produce byte-identical logs — CI cross-checks
//!     them with `cmp`. (`incremental` is accepted as a legacy
//!     spelling of `sharded`.) `--stats` prints per-event
//!     measurement/re-optimization timing percentiles, the optimizer's
//!     peak scratch sizes, and — under the sharded path — per-shard
//!     commit/score/scratch accumulators to stderr (never into the
//!     log, which stays byte-deterministic). `--fill-threads N` splits
//!     every water-filling evaluation across N workers (bitwise-equal
//!     to serial, so logs do not change; with `--stats` a per-worker
//!     fill block is printed). `--parallel-passes` runs independent
//!     greedy passes over isolated bottleneck components before the
//!     global loop, on `--pass-threads N` workers: for a fixed flag
//!     setting the log is byte-identical at any thread count.
//! ```

use fubar::core::baselines;
use fubar::prelude::*;
use fubar::scenario::catalog;
use fubar::topology::catalog as topo_catalog;
use fubar::topology::format as topo_format;
use fubar::topology::generators;
use fubar::traffic::format as tm_format;
use fubar::traffic::workload;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fubar-cli generate <he|abilene> <capacity_mbps> <seed>\n  \
         fubar-cli evaluate <file.topo> <file.tm>\n  \
         fubar-cli optimize <file.topo> <file.tm> [--minmax] [--trace out.csv]\n  \
         fubar-cli topology list\n  \
         fubar-cli topology show <name|file.topo>\n  \
         fubar-cli topology export <he|abilene|hypergrowth|planetary> <capacity_mbps> [out.topo]\n  \
         fubar-cli topology validate <name|file.topo>...\n  \
         fubar-cli scenario list\n  \
         fubar-cli scenario show <name|file.scn>\n  \
         fubar-cli scenario run <name|file.scn> [--seed N] [--out log.txt] \
         [--oracle sharded|flat|full] [--stats] \
         [--fill-threads N] [--parallel-passes] [--pass-threads N]"
    );
    ExitCode::FAILURE
}

fn load(topo_path: &str, tm_path: &str) -> Result<(Topology, TrafficMatrix), String> {
    let topo_text = std::fs::read_to_string(topo_path).map_err(|e| format!("{topo_path}: {e}"))?;
    let topo = topo_format::parse(&topo_text).map_err(|e| format!("{topo_path}: {e}"))?;
    let tm_text = std::fs::read_to_string(tm_path).map_err(|e| format!("{tm_path}: {e}"))?;
    let tm = tm_format::parse(&tm_text, &topo).map_err(|e| format!("{tm_path}: {e}"))?;
    Ok((topo, tm))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [kind, mbps, seed] = args else {
        return Err("generate needs <he|abilene> <capacity_mbps> <seed>".into());
    };
    let mbps: f64 = mbps.parse().map_err(|e| format!("bad capacity: {e}"))?;
    let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    let topo = match kind.as_str() {
        "he" => generators::he_core(Bandwidth::from_mbps(mbps)),
        "abilene" => generators::abilene(Bandwidth::from_mbps(mbps)),
        other => return Err(format!("unknown topology kind {other:?}")),
    };
    let tm = workload::generate(&topo, &WorkloadConfig::default(), seed);
    let base = format!("{}-s{seed}", topo.name());
    std::fs::write(format!("{base}.topo"), topo_format::serialize(&topo))
        .map_err(|e| e.to_string())?;
    std::fs::write(format!("{base}.tm"), tm_format::serialize(&tm, &topo))
        .map_err(|e| e.to_string())?;
    println!("wrote {base}.topo and {base}.tm ({} aggregates)", tm.len());
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let [topo_path, tm_path] = args else {
        return Err("evaluate needs <file.topo> <file.tm>".into());
    };
    let (topo, tm) = load(topo_path, tm_path)?;
    println!("{}", topo.summary());
    println!(
        "{} aggregates, {} flows, demand {}",
        tm.len(),
        tm.total_flows(),
        tm.total_demand()
    );
    let sp = baselines::shortest_path(&topo, &tm);
    println!(
        "shortest-path: utility {:.4}, {} congested links, {} starved bundles",
        sp.report.network_utility,
        sp.outcome.congested.len(),
        sp.outcome.congested_bundle_count()
    );
    for &l in sp.outcome.congested.iter().take(10) {
        println!(
            "  {:<28} oversub {:.3}",
            topo.link_label(l),
            sp.outcome.oversubscription(l)
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("optimize needs <file.topo> <file.tm>".into());
    }
    let (topo, tm) = load(&args[0], &args[1])?;
    let mut cfg = OptimizerConfig::default();
    let mut trace_path: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--minmax" => cfg.objective = Objective::MinMaxUtilization,
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .ok_or_else(|| "--trace needs a file".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let result = Optimizer::new(&topo, &tm, cfg).run();
    let initial = result.trace.initial().unwrap();
    let last = result.trace.last().unwrap();
    println!(
        "utility {:.4} -> {:.4} in {} moves / {:.1}s ({:?}); congested links {} -> {}",
        initial.network_utility,
        last.network_utility,
        result.commits,
        last.elapsed.as_secs_f64(),
        result.termination,
        initial.congested_links,
        last.congested_links
    );
    if let Some(path) = trace_path {
        std::fs::write(&path, result.trace.to_csv()).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    println!("# computed splits (aggregate, flows, path)");
    for a in tm.iter() {
        let ps = result.allocation.path_set(a.id);
        for (idx, p) in ps.iter().enumerate() {
            let flows = result.allocation.flows_on(a.id, idx);
            if flows == 0 {
                continue;
            }
            let hops: Vec<&str> = p.nodes().iter().map(|&n| topo.node_name(n)).collect();
            println!(
                "split {} {} {} {}",
                topo.node_name(a.ingress),
                topo.node_name(a.egress),
                flows,
                hops.join("->")
            );
        }
    }
    Ok(())
}

/// Loads a topology by catalog name or from a `.topo` file.
fn load_topology(what: &str) -> Result<Topology, String> {
    if let Some(t) = topo_catalog::load(what) {
        return Ok(t);
    }
    if std::path::Path::new(what).exists() {
        let text = std::fs::read_to_string(what).map_err(|e| format!("{what}: {e}"))?;
        return topo_format::parse(&text).map_err(|e| format!("{what}: {e}"));
    }
    if let Some(text) = topo_catalog::find(what) {
        return topo_format::parse(text).map_err(|e| format!("{what}: {e}"));
    }
    Err(format!(
        "{what:?} is neither a bundled topology ({}) nor a .topo file",
        topo_catalog::names().join(", ")
    ))
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("topology needs a subcommand: list, show, export, or validate".into());
    };
    match sub.as_str() {
        "list" => {
            for name in topo_catalog::names() {
                let t = topo_catalog::load(name).expect("catalog names load");
                println!("{}", t.summary());
            }
            Ok(())
        }
        "show" => {
            let [what] = &args[1..] else {
                return Err("show needs <name|file.topo>".into());
            };
            print!("{}", topo_format::serialize(&load_topology(what)?));
            Ok(())
        }
        "export" => {
            let (kind, mbps, out) = match &args[1..] {
                [kind, mbps] => (kind, mbps, None),
                [kind, mbps, out] => (kind, mbps, Some(out.clone())),
                _ => {
                    return Err(
                        "export needs <he|abilene|hypergrowth|planetary> <capacity_mbps> \
                         [out.topo]"
                            .into(),
                    )
                }
            };
            let mbps: f64 = mbps.parse().map_err(|e| format!("bad capacity: {e}"))?;
            let cap = Bandwidth::from_mbps(mbps);
            let topo = match kind.as_str() {
                "he" => generators::he_core(cap),
                "abilene" => generators::abilene(cap),
                "hypergrowth" => generators::hypergrowth(8, 8, cap),
                "planetary" => generators::planetary(16, 16, cap),
                other => return Err(format!("unknown topology kind {other:?}")),
            };
            let out = out.unwrap_or_else(|| format!("{}.topo", topo.name()));
            std::fs::write(&out, topo_format::serialize(&topo)).map_err(|e| e.to_string())?;
            println!("wrote {out} ({})", topo.summary());
            Ok(())
        }
        "validate" => {
            if args.len() < 2 {
                return Err("validate needs at least one <name|file.topo>".into());
            }
            for what in &args[1..] {
                let t = load_topology(what)?;
                if !t.is_connected() {
                    return Err(format!("{what}: not strongly connected"));
                }
                // The round-trip invariant, proven on the actual artifact:
                // parse(serialize(t)) must be bitwise-identical (names,
                // coordinates, capacities, delays, link structure), and
                // the canonical serialization must be a fixed point.
                let text = topo_format::serialize(&t);
                let back = topo_format::parse(&text)
                    .map_err(|e| format!("{what}: canonical form failed to reparse: {e}"))?;
                if back != t {
                    return Err(format!(
                        "{what}: serialize∘parse round trip is not bitwise-exact"
                    ));
                }
                if topo_format::serialize(&back) != text {
                    return Err(format!(
                        "{what}: canonical serialization is not a fixed point"
                    ));
                }
                println!("ok {what}: {} (round trip bitwise-exact)", t.summary());
            }
            Ok(())
        }
        other => Err(format!("unknown topology subcommand {other:?}")),
    }
}

/// Loads a scenario by catalog name or from a spec file. For file
/// specs, also returns the `.scn` file's directory so `topology file`
/// paths inside it resolve relative to the spec, not the working
/// directory.
fn load_scenario(what: &str) -> Result<(Scenario, Option<std::path::PathBuf>), String> {
    if let Some(s) = catalog::load(what) {
        return Ok((s, None));
    }
    let path = std::path::Path::new(what);
    if path.exists() {
        let text = std::fs::read_to_string(what).map_err(|e| format!("{what}: {e}"))?;
        let s = Scenario::parse(&text).map_err(|e| format!("{what}: {e}"))?;
        return Ok((s, path.parent().map(|p| p.to_path_buf())));
    }
    Err(format!(
        "{what:?} is neither a bundled scenario ({}) nor a spec file",
        catalog::names().join(", ")
    ))
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("scenario needs a subcommand: list, show, or run".into());
    };
    match sub.as_str() {
        "list" => {
            for name in catalog::names() {
                let s = catalog::load(name).expect("catalog names load");
                println!(
                    "{name:<20} {:>4} events/timeline, duration {}, seed {}",
                    s.timeline.len(),
                    s.duration,
                    s.seed
                );
            }
            Ok(())
        }
        "show" => {
            let [what] = &args[1..] else {
                return Err("show needs <name|file.scn>".into());
            };
            print!("{}", load_scenario(what)?.0);
            Ok(())
        }
        "run" => {
            if args.len() < 2 {
                return Err(
                    "run needs <name|file.scn> [--seed N] [--out file] [--oracle mode] [--stats] \
                     [--fill-threads N] [--parallel-passes] [--pass-threads N]"
                        .into(),
                );
            }
            let (spec, base) = load_scenario(&args[1])?;
            let mut seed = spec.seed;
            let mut out: Option<String> = None;
            let mut mode = fubar::scenario::OracleMode::Sharded;
            let mut stats = false;
            let mut knobs = fubar::scenario::ParallelKnobs::default();
            let positive = |flag: &str, v: Option<&String>| -> Result<usize, String> {
                let n: usize = v
                    .ok_or_else(|| format!("{flag} needs a thread count"))?
                    .parse()
                    .map_err(|e| format!("bad {flag}: {e}"))?;
                if n == 0 {
                    return Err(format!("{flag} must be >= 1"));
                }
                Ok(n)
            };
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--stats" => stats = true,
                    "--parallel-passes" => knobs.parallel_passes = true,
                    "--fill-threads" => {
                        i += 1;
                        knobs.fill_threads = positive("--fill-threads", args.get(i))?;
                    }
                    "--pass-threads" => {
                        i += 1;
                        knobs.pass_threads = positive("--pass-threads", args.get(i))?;
                    }
                    "--seed" => {
                        i += 1;
                        seed = args
                            .get(i)
                            .ok_or_else(|| "--seed needs a value".to_string())?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    "--out" => {
                        i += 1;
                        out = Some(
                            args.get(i)
                                .ok_or_else(|| "--out needs a file".to_string())?
                                .clone(),
                        );
                    }
                    "--oracle" => {
                        i += 1;
                        mode = match args
                            .get(i)
                            .ok_or_else(|| "--oracle needs sharded|flat|full".to_string())?
                            .as_str()
                        {
                            // "incremental" predates the sharded loop;
                            // it keeps selecting the default
                            // incremental path, which now shards.
                            "sharded" | "incremental" => fubar::scenario::OracleMode::Sharded,
                            "flat" => fubar::scenario::OracleMode::Flat,
                            "full" => fubar::scenario::OracleMode::Full,
                            other => {
                                return Err(format!(
                                    "--oracle must be sharded, flat, or full, not {other:?}"
                                ))
                            }
                        };
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            let base = base.as_deref();
            let (log, run_stats) = if stats {
                let (log, s) =
                    fubar::scenario::run_with_stats_oracle_knobs_at(&spec, seed, mode, base, knobs)
                        .map_err(|e| e.to_string())?;
                (log, Some(s))
            } else {
                (
                    fubar::scenario::run_oracle_knobs_at(&spec, seed, mode, base, knobs)
                        .map_err(|e| e.to_string())?,
                    None,
                )
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, log.to_text()).map_err(|e| e.to_string())?;
                    println!("log written to {path}");
                }
                None => print!("{}", log.to_text()),
            }
            eprintln!("{}", log.summary());
            if let Some(s) = run_stats {
                eprintln!("{}", s.render());
            }
            Ok(())
        }
        other => Err(format!("unknown scenario subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "topology" => cmd_topology(&args[1..]),
        "scenario" => cmd_scenario(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
