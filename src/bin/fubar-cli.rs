//! `fubar-cli` — drive the FUBAR optimizer from topology and
//! traffic-matrix text files (see `fubar_topology::format` and
//! `fubar_traffic::format` for the grammars).
//!
//! ```text
//! fubar-cli generate <he|abilene> <capacity_mbps> <seed>
//!     Emit a topology file and a matching workload matrix to
//!     ./<name>.topo and ./<name>.tm.
//!
//! fubar-cli evaluate <file.topo> <file.tm>
//!     Evaluate shortest-path routing (no optimization).
//!
//! fubar-cli optimize <file.topo> <file.tm> [--minmax] [--trace out.csv]
//!     Run FUBAR and print the computed path splits.
//!
//! fubar-cli topology list
//!     Name and summarize the bundled topology catalog (`topologies/`).
//!
//! fubar-cli topology show <name|file.topo>
//!     Print a topology (canonical serialization: raw-seconds delays,
//!     raw-bps capacities — the exactly round-tripping form).
//!
//! fubar-cli topology export <he|abilene|hypergrowth|planetary> <capacity_mbps> [out.topo]
//!     Export a generator topology to its canonical `.topo` form — how
//!     the generated entries of `topologies/` are produced. `planetary`
//!     is the 256-POP hierarchical tier (inter-region trunks at 4× the
//!     given capacity).
//!
//! fubar-cli topology validate <name|file.topo>...
//!     Parse each topology, require strong connectivity, and prove the
//!     `serialize ∘ parse` round trip is bitwise-exact (capacities,
//!     delays, names, link structure). CI runs this over every
//!     committed `.topo`.
//!
//! fubar-cli scenario list
//!     Name and describe the bundled scenario catalog.
//!
//! fubar-cli scenario show <name|file.scn>
//!     Print a scenario spec (canonical serialization).
//!
//! fubar-cli scenario run <name|file.scn> [--seed N] [--out log.txt]
//!                        [--oracle sharded|flat|full] [--stats]
//!                        [--fill-threads N] [--parallel-passes] [--pass-threads N]
//!     Run a scenario and emit the per-event log on stdout (or to
//!     --out). Same spec + same seed => byte-identical log. The
//!     catalog scales up to `hypergrowth` (4,096 aggregates on the
//!     64-POP tier) and `planetary` (65,536 aggregates on the 256-POP
//!     tier): incremental fabric measurement and the region-sharded
//!     optimizer keep whole runs tractable. `--oracle` picks the
//!     execution path: `sharded` (default) routes candidate scoring
//!     through per-region subproblems, `flat` runs the same
//!     incremental loop unsharded (the `sharded ≡ flat` oracle), and
//!     `full` forces full-recompute measurement *and* scoring on every
//!     probe. All three produce byte-identical logs — CI cross-checks
//!     them with `cmp`. (`incremental` is accepted as a legacy
//!     spelling of `sharded`.) `--stats` prints per-event
//!     measurement/re-optimization timing percentiles, the optimizer's
//!     peak scratch sizes, and — under the sharded path — per-shard
//!     commit/score/scratch accumulators to stderr (never into the
//!     log, which stays byte-deterministic). `--fill-threads N` splits
//!     every water-filling evaluation across N workers (bitwise-equal
//!     to serial, so logs do not change; with `--stats` a per-worker
//!     fill block is printed). `--parallel-passes` runs independent
//!     greedy passes over isolated bottleneck components before the
//!     global loop, on `--pass-threads N` workers: for a fixed flag
//!     setting the log is byte-identical at any thread count.
//!
//! fubar-cli scenario search <name|file.scn> [--seed N] [--candidates K]
//!                           [--name NAME] [--out file.scn]
//!                           [--check file.scn] [--smoke]
//!     Adversarial worst-case search: run K seeded perturbations of the
//!     base scenario (outage placement, surge timing/magnitude,
//!     controller blackout windows), score each by utility loss plus
//!     recovery time, and print the argmax as a committable `.scn`
//!     (stdout, or --out). Deterministic: same base + --seed +
//!     --candidates always re-finds the same worst case. --check FILE
//!     re-runs the search and fails unless the winner equals the
//!     committed spec in FILE (CI holds the chaos catalog to this).
//!     --smoke bounds the run (few candidates, capped duration) for
//!     quick pipeline checks.
//!
//! fubar-cli lint [check|ledger] [--root DIR] [--format text|json] [--out FILE]
//!     The workspace determinism linter (also shipped standalone as
//!     `fubar-lint`). `check` (the default) runs the determinism rules
//!     over every non-vendor source file; `ledger` cross-checks the
//!     ARCHITECTURE.md invariant ledger against the tree and CI, and
//!     the scenario/topology catalogs against the replay loop. Exit 0
//!     when clean (warnings allowed), 65 on any error-severity finding.
//! ```
//!
//! Exit codes are distinct and scriptable: `0` success, `2` usage
//! errors (bad flags/arity), `65` data errors (parse/validation
//! failures, failed `--check`), `66` unknown catalog names or missing
//! input files, `74` I/O failures. Every failure prints a one-line
//! `error: ...` diagnostic to stderr.

use fubar::core::baselines;
use fubar::prelude::*;
use fubar::scenario::catalog;
use fubar::topology::catalog as topo_catalog;
use fubar::topology::format as topo_format;
use fubar::topology::generators;
use fubar::traffic::format as tm_format;
use fubar::traffic::workload;
use std::process::ExitCode;

/// A classified CLI failure: every variant maps to its own exit code
/// (sysexits-flavored) so scripts and CI can tell a typo'd flag from a
/// corrupt spec from a missing file without scraping stderr.
enum CliError {
    /// Bad arguments: wrong arity, unknown flag, unparsable number.
    Usage(String),
    /// The input was found but is invalid: parse or validation failure.
    Data(String),
    /// Unknown catalog name or nonexistent input file.
    NotFound(String),
    /// The OS failed us: read/write errors on files that should work.
    Io(String),
}

impl CliError {
    fn usage(m: impl Into<String>) -> Self {
        CliError::Usage(m.into())
    }
    fn data(m: impl Into<String>) -> Self {
        CliError::Data(m.into())
    }
    fn not_found(m: impl Into<String>) -> Self {
        CliError::NotFound(m.into())
    }
    fn io(m: impl Into<String>) -> Self {
        CliError::Io(m.into())
    }
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 65,
            CliError::NotFound(_) => 66,
            CliError::Io(_) => 74,
        }
    }
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Data(m) | CliError::NotFound(m) | CliError::Io(m) => m,
        }
    }
}

type CliResult = Result<(), CliError>;

/// Reads a file, classifying "no such file" apart from real I/O trouble.
fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| match e.kind() {
        std::io::ErrorKind::NotFound => CliError::not_found(format!("{path}: {e}")),
        _ => CliError::io(format!("{path}: {e}")),
    })
}

fn write_file(path: &str, text: &str) -> CliResult {
    std::fs::write(path, text).map_err(|e| CliError::io(format!("{path}: {e}")))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fubar-cli generate <he|abilene> <capacity_mbps> <seed>\n  \
         fubar-cli evaluate <file.topo> <file.tm>\n  \
         fubar-cli optimize <file.topo> <file.tm> [--minmax] [--trace out.csv]\n  \
         fubar-cli topology list\n  \
         fubar-cli topology show <name|file.topo>\n  \
         fubar-cli topology export <he|abilene|hypergrowth|planetary> <capacity_mbps> [out.topo]\n  \
         fubar-cli topology validate <name|file.topo>...\n  \
         fubar-cli scenario list\n  \
         fubar-cli scenario show <name|file.scn>\n  \
         fubar-cli scenario run <name|file.scn> [--seed N] [--out log.txt] \
         [--oracle sharded|flat|full] [--stats] \
         [--fill-threads N] [--parallel-passes] [--pass-threads N]\n  \
         fubar-cli scenario search <name|file.scn> [--seed N] [--candidates K] \
         [--name NAME] [--out file.scn] [--check file.scn] [--smoke]\n  \
         fubar-cli lint [check|ledger] [--root DIR] [--format text|json] [--out FILE]"
    );
    ExitCode::from(2)
}

fn load(topo_path: &str, tm_path: &str) -> Result<(Topology, TrafficMatrix), CliError> {
    let topo_text = read_file(topo_path)?;
    let topo =
        topo_format::parse(&topo_text).map_err(|e| CliError::data(format!("{topo_path}: {e}")))?;
    let tm_text = read_file(tm_path)?;
    let tm =
        tm_format::parse(&tm_text, &topo).map_err(|e| CliError::data(format!("{tm_path}: {e}")))?;
    Ok((topo, tm))
}

fn cmd_generate(args: &[String]) -> CliResult {
    let [kind, mbps, seed] = args else {
        return Err(CliError::usage(
            "generate needs <he|abilene> <capacity_mbps> <seed>",
        ));
    };
    let mbps: f64 = mbps
        .parse()
        .map_err(|e| CliError::usage(format!("bad capacity: {e}")))?;
    let seed: u64 = seed
        .parse()
        .map_err(|e| CliError::usage(format!("bad seed: {e}")))?;
    let topo = match kind.as_str() {
        "he" => generators::he_core(Bandwidth::from_mbps(mbps)),
        "abilene" => generators::abilene(Bandwidth::from_mbps(mbps)),
        other => return Err(CliError::usage(format!("unknown topology kind {other:?}"))),
    };
    let tm = workload::generate(&topo, &WorkloadConfig::default(), seed);
    let base = format!("{}-s{seed}", topo.name());
    write_file(&format!("{base}.topo"), &topo_format::serialize(&topo))?;
    write_file(&format!("{base}.tm"), &tm_format::serialize(&tm, &topo))?;
    println!("wrote {base}.topo and {base}.tm ({} aggregates)", tm.len());
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> CliResult {
    let [topo_path, tm_path] = args else {
        return Err(CliError::usage("evaluate needs <file.topo> <file.tm>"));
    };
    let (topo, tm) = load(topo_path, tm_path)?;
    println!("{}", topo.summary());
    println!(
        "{} aggregates, {} flows, demand {}",
        tm.len(),
        tm.total_flows(),
        tm.total_demand()
    );
    let sp = baselines::shortest_path(&topo, &tm);
    println!(
        "shortest-path: utility {:.4}, {} congested links, {} starved bundles",
        sp.report.network_utility,
        sp.outcome.congested.len(),
        sp.outcome.congested_bundle_count()
    );
    for &l in sp.outcome.congested.iter().take(10) {
        println!(
            "  {:<28} oversub {:.3}",
            topo.link_label(l),
            sp.outcome.oversubscription(l)
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> CliResult {
    if args.len() < 2 {
        return Err(CliError::usage("optimize needs <file.topo> <file.tm>"));
    }
    let (topo, tm) = load(&args[0], &args[1])?;
    let mut cfg = OptimizerConfig::default();
    let mut trace_path: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--minmax" => cfg.objective = Objective::MinMaxUtilization,
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--trace needs a file"))?
                        .clone(),
                );
            }
            other => return Err(CliError::usage(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }

    let result = Optimizer::new(&topo, &tm, cfg).run();
    let initial = result.trace.initial().unwrap();
    let last = result.trace.last().unwrap();
    println!(
        "utility {:.4} -> {:.4} in {} moves / {:.1}s ({:?}); congested links {} -> {}",
        initial.network_utility,
        last.network_utility,
        result.commits,
        last.elapsed.as_secs_f64(),
        result.termination,
        initial.congested_links,
        last.congested_links
    );
    if let Some(path) = trace_path {
        write_file(&path, &result.trace.to_csv())?;
        println!("trace written to {path}");
    }
    println!("# computed splits (aggregate, flows, path)");
    for a in tm.iter() {
        let ps = result.allocation.path_set(a.id);
        for (idx, p) in ps.iter().enumerate() {
            let flows = result.allocation.flows_on(a.id, idx);
            if flows == 0 {
                continue;
            }
            let hops: Vec<&str> = p.nodes().iter().map(|&n| topo.node_name(n)).collect();
            println!(
                "split {} {} {} {}",
                topo.node_name(a.ingress),
                topo.node_name(a.egress),
                flows,
                hops.join("->")
            );
        }
    }
    Ok(())
}

/// Loads a topology by catalog name or from a `.topo` file.
fn load_topology(what: &str) -> Result<Topology, CliError> {
    if let Some(t) = topo_catalog::load(what) {
        return Ok(t);
    }
    if std::path::Path::new(what).exists() {
        let text = read_file(what)?;
        return topo_format::parse(&text).map_err(|e| CliError::data(format!("{what}: {e}")));
    }
    if let Some(text) = topo_catalog::find(what) {
        return topo_format::parse(text).map_err(|e| CliError::data(format!("{what}: {e}")));
    }
    Err(CliError::not_found(format!(
        "{what:?} is neither a bundled topology ({}) nor a .topo file",
        topo_catalog::names().join(", ")
    )))
}

fn cmd_topology(args: &[String]) -> CliResult {
    let Some(sub) = args.first() else {
        return Err(CliError::usage(
            "topology needs a subcommand: list, show, export, or validate",
        ));
    };
    match sub.as_str() {
        "list" => {
            for name in topo_catalog::names() {
                let t = topo_catalog::load(name).expect("catalog names load");
                println!("{}", t.summary());
            }
            Ok(())
        }
        "show" => {
            let [what] = &args[1..] else {
                return Err(CliError::usage("show needs <name|file.topo>"));
            };
            print!("{}", topo_format::serialize(&load_topology(what)?));
            Ok(())
        }
        "export" => {
            let (kind, mbps, out) = match &args[1..] {
                [kind, mbps] => (kind, mbps, None),
                [kind, mbps, out] => (kind, mbps, Some(out.clone())),
                _ => {
                    return Err(CliError::usage(
                        "export needs <he|abilene|hypergrowth|planetary> <capacity_mbps> \
                         [out.topo]",
                    ))
                }
            };
            let mbps: f64 = mbps
                .parse()
                .map_err(|e| CliError::usage(format!("bad capacity: {e}")))?;
            let cap = Bandwidth::from_mbps(mbps);
            let topo = match kind.as_str() {
                "he" => generators::he_core(cap),
                "abilene" => generators::abilene(cap),
                "hypergrowth" => generators::hypergrowth(8, 8, cap),
                "planetary" => generators::planetary(16, 16, cap),
                other => return Err(CliError::usage(format!("unknown topology kind {other:?}"))),
            };
            let out = out.unwrap_or_else(|| format!("{}.topo", topo.name()));
            write_file(&out, &topo_format::serialize(&topo))?;
            println!("wrote {out} ({})", topo.summary());
            Ok(())
        }
        "validate" => {
            if args.len() < 2 {
                return Err(CliError::usage(
                    "validate needs at least one <name|file.topo>",
                ));
            }
            for what in &args[1..] {
                let t = load_topology(what)?;
                if !t.is_connected() {
                    return Err(CliError::data(format!("{what}: not strongly connected")));
                }
                // The round-trip invariant, proven on the actual artifact:
                // parse(serialize(t)) must be bitwise-identical (names,
                // coordinates, capacities, delays, link structure), and
                // the canonical serialization must be a fixed point.
                let text = topo_format::serialize(&t);
                let back = topo_format::parse(&text).map_err(|e| {
                    CliError::data(format!("{what}: canonical form failed to reparse: {e}"))
                })?;
                if back != t {
                    return Err(CliError::data(format!(
                        "{what}: serialize∘parse round trip is not bitwise-exact"
                    )));
                }
                if topo_format::serialize(&back) != text {
                    return Err(CliError::data(format!(
                        "{what}: canonical serialization is not a fixed point"
                    )));
                }
                println!("ok {what}: {} (round trip bitwise-exact)", t.summary());
            }
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown topology subcommand {other:?}"
        ))),
    }
}

/// Loads a scenario by catalog name or from a spec file. For file
/// specs, also returns the `.scn` file's directory so `topology file`
/// paths inside it resolve relative to the spec, not the working
/// directory.
fn load_scenario(what: &str) -> Result<(Scenario, Option<std::path::PathBuf>), CliError> {
    if let Some(s) = catalog::load(what) {
        return Ok((s, None));
    }
    let path = std::path::Path::new(what);
    if path.exists() {
        let text = read_file(what)?;
        let s = Scenario::parse(&text).map_err(|e| CliError::data(format!("{what}: {e}")))?;
        return Ok((s, path.parent().map(|p| p.to_path_buf())));
    }
    Err(CliError::not_found(format!(
        "{what:?} is neither a bundled scenario ({}) nor a spec file",
        catalog::names().join(", ")
    )))
}

fn cmd_scenario_run(args: &[String]) -> CliResult {
    if args.len() < 2 {
        return Err(CliError::usage(
            "run needs <name|file.scn> [--seed N] [--out file] [--oracle mode] [--stats] \
             [--fill-threads N] [--parallel-passes] [--pass-threads N]",
        ));
    }
    let (spec, base) = load_scenario(&args[1])?;
    let mut seed = spec.seed;
    let mut out: Option<String> = None;
    let mut mode = fubar::scenario::OracleMode::Sharded;
    let mut stats = false;
    let mut knobs = fubar::scenario::ParallelKnobs::default();
    let positive = |flag: &str, v: Option<&String>| -> Result<usize, CliError> {
        let n: usize = v
            .ok_or_else(|| CliError::usage(format!("{flag} needs a thread count")))?
            .parse()
            .map_err(|e| CliError::usage(format!("bad {flag}: {e}")))?;
        if n == 0 {
            return Err(CliError::usage(format!("{flag} must be >= 1")));
        }
        Ok(n)
    };
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => stats = true,
            "--parallel-passes" => knobs.parallel_passes = true,
            "--fill-threads" => {
                i += 1;
                knobs.fill_threads = positive("--fill-threads", args.get(i))?;
            }
            "--pass-threads" => {
                i += 1;
                knobs.pass_threads = positive("--pass-threads", args.get(i))?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--seed needs a value"))?
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad seed: {e}")))?;
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--out needs a file"))?
                        .clone(),
                );
            }
            "--oracle" => {
                i += 1;
                mode = match args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--oracle needs sharded|flat|full"))?
                    .as_str()
                {
                    // "incremental" predates the sharded loop;
                    // it keeps selecting the default
                    // incremental path, which now shards.
                    "sharded" | "incremental" => fubar::scenario::OracleMode::Sharded,
                    "flat" => fubar::scenario::OracleMode::Flat,
                    "full" => fubar::scenario::OracleMode::Full,
                    other => {
                        return Err(CliError::usage(format!(
                            "--oracle must be sharded, flat, or full, not {other:?}"
                        )))
                    }
                };
            }
            other => return Err(CliError::usage(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    let base = base.as_deref();
    let (log, run_stats) = if stats {
        let (log, s) =
            fubar::scenario::run_with_stats_oracle_knobs_at(&spec, seed, mode, base, knobs)
                .map_err(|e| CliError::data(e.to_string()))?;
        (log, Some(s))
    } else {
        (
            fubar::scenario::run_oracle_knobs_at(&spec, seed, mode, base, knobs)
                .map_err(|e| CliError::data(e.to_string()))?,
            None,
        )
    };
    match out {
        Some(path) => {
            write_file(&path, &log.to_text())?;
            println!("log written to {path}");
        }
        None => print!("{}", log.to_text()),
    }
    eprintln!("{}", log.summary());
    if let Some(s) = run_stats {
        eprintln!("{}", s.render());
    }
    Ok(())
}

fn cmd_scenario_search(args: &[String]) -> CliResult {
    if args.len() < 2 {
        return Err(CliError::usage(
            "search needs <name|file.scn> [--seed N] [--candidates K] [--name NAME] \
             [--out file.scn] [--check file.scn] [--smoke]",
        ));
    }
    let (mut spec, base) = load_scenario(&args[1])?;
    let mut seed: u64 = 1;
    let mut candidates: usize = 24;
    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut smoke = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--seed needs a value"))?
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad seed: {e}")))?;
            }
            "--candidates" => {
                i += 1;
                candidates = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--candidates needs a count"))?
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --candidates: {e}")))?;
                if candidates == 0 {
                    return Err(CliError::usage("--candidates must be >= 1"));
                }
            }
            "--name" => {
                i += 1;
                name = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--name needs a value"))?
                        .clone(),
                );
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--out needs a file"))?
                        .clone(),
                );
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--check needs a file"))?
                        .clone(),
                );
            }
            other => return Err(CliError::usage(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    if smoke {
        // Bounded pipeline check: few candidates, short runs. Still
        // fully deterministic — just cheap enough for every CI push.
        candidates = candidates.min(3);
        let cap = fubar::topology::Delay::from_secs(60.0);
        if spec.duration > cap {
            spec.duration = cap;
        }
    }
    let name = name.unwrap_or_else(|| format!("{}_worst", spec.name));
    let outcome = fubar::scenario::search(&spec, &name, seed, candidates, base.as_deref())
        .map_err(|e| CliError::data(e.to_string()))?;
    eprintln!(
        "search: {} candidates over {:?}, winner #{} score {:.4} (base {:.4})",
        outcome.scores.len(),
        spec.name,
        outcome.candidate,
        outcome.score,
        outcome.scores[0]
    );
    if let Some(path) = &check {
        let text = read_file(path)?;
        let committed =
            Scenario::parse(&text).map_err(|e| CliError::data(format!("{path}: {e}")))?;
        if committed != outcome.scenario {
            return Err(CliError::data(format!(
                "{path}: committed spec does not match the search winner for \
                 --seed {seed} --candidates {candidates}"
            )));
        }
        println!(
            "ok {path}: search re-finds the committed worst case (candidate #{}, score {:.4})",
            outcome.candidate, outcome.score
        );
        return Ok(());
    }
    match out {
        Some(path) => {
            write_file(&path, &outcome.scenario.to_string())?;
            println!("worst case written to {path}");
        }
        None => print!("{}", outcome.scenario),
    }
    Ok(())
}

fn cmd_scenario(args: &[String]) -> CliResult {
    let Some(sub) = args.first() else {
        return Err(CliError::usage(
            "scenario needs a subcommand: list, show, run, or search",
        ));
    };
    match sub.as_str() {
        "list" => {
            for name in catalog::names() {
                let s = catalog::load(name).expect("catalog names load");
                println!(
                    "{name:<20} {:>4} events/timeline, duration {}, seed {}",
                    s.timeline.len(),
                    s.duration,
                    s.seed
                );
            }
            Ok(())
        }
        "show" => {
            let [what] = &args[1..] else {
                return Err(CliError::usage("show needs <name|file.scn>"));
            };
            print!("{}", load_scenario(what)?.0);
            Ok(())
        }
        "run" => cmd_scenario_run(args),
        "search" => cmd_scenario_search(args),
        other => Err(CliError::usage(format!(
            "unknown scenario subcommand {other:?}"
        ))),
    }
}

fn cmd_lint(args: &[String]) -> CliResult {
    use fubar::lint::{check_ledger, check_workspace, LintError};

    let mut mode = "check";
    let mut root = String::from(".");
    let mut format = "text";
    let mut out: Option<String> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" if i == 0 => mode = "check",
            "ledger" if i == 0 => mode = "ledger",
            "--root" => {
                i += 1;
                root = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--root needs a directory"))?
                    .clone();
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => format = "text",
                    Some("json") => format = "json",
                    _ => return Err(CliError::usage("--format must be text or json")),
                }
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--out needs a file"))?
                        .clone(),
                );
            }
            other => return Err(CliError::usage(format!("unknown lint argument {other:?}"))),
        }
        i += 1;
    }

    let root = std::path::PathBuf::from(root);
    let report = match mode {
        "ledger" => check_ledger(&root),
        _ => check_workspace(&root),
    }
    .map_err(|e| match e {
        LintError::BadRoot(m) => CliError::not_found(m),
        LintError::Io(m) => CliError::not_found(m),
    })?;

    let rendered = match format {
        "json" => report.to_json(),
        _ => report.render_text(),
    };
    match &out {
        Some(path) => write_file(path, &rendered)?,
        None => print!("{rendered}"),
    }
    if report.errors() > 0 {
        return Err(CliError::data(format!(
            "lint {}: {} error-severity finding(s)",
            report.mode,
            report.errors()
        )));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "topology" => cmd_topology(&args[1..]),
        "scenario" => cmd_scenario(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
