//! # fubar
//!
//! A complete Rust reproduction of **"FUBAR: Flow Utility Based
//! Routing"** (Nikola Gvozdiev, Brad Karp, Mark Handley — HotNets-XIII,
//! 2014): a centralized, offline traffic-engineering system that routes
//! *flow aggregates* over multiple paths so as to maximize total network
//! utility, where utility is a per-application function of **both
//! bandwidth and delay**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`graph`] | directed graphs, Dijkstra with exclusions, Yen K-shortest |
//! | [`topology`] | POPs, capacitated duplex links, generators, text format |
//! | [`utility`] | bandwidth × delay utility functions (paper §2.2) |
//! | [`traffic`] | aggregates, traffic matrices, the §3 workload |
//! | [`model`] | the TCP-like progressive-filling flow model (§2.3) |
//! | [`core`] | the FUBAR optimizer, baselines, experiment drivers (§2.4–2.5) |
//! | [`sdn`] | simulated SDN deployment: fabric, measurement, closed loop |
//! | [`scenario`] | deterministic discrete-event scenarios: churn, failures, drift |
//! | [`lint`] | workspace determinism linter + invariant-ledger conformance |
//!
//! ## Quickstart
//!
//! ```
//! use fubar::prelude::*;
//!
//! // The paper's provisioned scenario, scaled down: synthesized HE core
//! // topology with a seeded random traffic matrix.
//! let topo = fubar::topology::generators::abilene(Bandwidth::from_mbps(3.0));
//! let tm = fubar::traffic::workload::generate(
//!     &topo,
//!     &WorkloadConfig { include_intra_pop: false, flow_count: (2, 8), ..Default::default() },
//!     42,
//! );
//! let result = Optimizer::with_defaults(&topo, &tm).run();
//! let sp = result.trace.initial().unwrap().network_utility;
//! assert!(result.report.network_utility >= sp);
//! ```
#![forbid(unsafe_code)]

pub use fubar_core as core;
pub use fubar_graph as graph;
pub use fubar_lint as lint;
pub use fubar_model as model;
pub use fubar_scenario as scenario;
pub use fubar_sdn as sdn;
pub use fubar_topology as topology;
pub use fubar_traffic as traffic;
pub use fubar_utility as utility;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use fubar_core::{
        Allocation, Objective, OptimizeResult, Optimizer, OptimizerConfig, PathPolicy, Termination,
    };
    pub use fubar_graph::{LinkId, LinkSet, NodeId, Path};
    pub use fubar_model::{BundleSpec, FlowModel, ModelConfig, UtilityReport};
    pub use fubar_scenario::{Scenario, ScenarioLog};
    pub use fubar_sdn::{ClosedLoop, ClosedLoopConfig, Fabric, FubarController, RuleSet};
    pub use fubar_topology::{Bandwidth, Delay, Topology, TopologyBuilder};
    pub use fubar_traffic::{Aggregate, AggregateId, TrafficMatrix, WorkloadConfig};
    pub use fubar_utility::{TrafficClass, UtilityFunction};
}
