//! `fubar-cli` integration tests: every failure class exits with its
//! own distinct code and a one-line `error: ...` diagnostic, so shell
//! scripts and CI can branch on what went wrong without scraping
//! stderr. The contract (sysexits-flavored):
//!
//! * `0`  — success
//! * `2`  — usage errors: bad arity, unknown flags/subcommands
//! * `65` — data errors: parse/validation failures, failed `--check`
//! * `66` — unknown catalog names, missing input files
//! * `74` — I/O failures on files that should be writable

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fubar-cli"))
        .args(args)
        .output()
        .expect("fubar-cli must spawn")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (signal?)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[track_caller]
fn assert_one_line_error(out: &Output) {
    let err = stderr(out);
    assert!(
        err.lines().any(|l| l.starts_with("error: ")),
        "expected a one-line `error: ...` diagnostic, got:\n{err}"
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = cli(&[]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
}

#[test]
fn unknown_flags_and_subcommands_exit_2() {
    for args in [
        &["scenario", "frobnicate"][..],
        &["topology", "frobnicate"][..],
        &["scenario", "run", "flash_crowd", "--bogus"][..],
        &["scenario", "search", "flash_crowd", "--candidates", "0"][..],
        &["generate", "he", "not-a-number", "1"][..],
    ] {
        let out = cli(args);
        assert_eq!(code(&out), 2, "{args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
    }
}

#[test]
fn unknown_names_and_missing_files_exit_66() {
    for args in [
        &["scenario", "show", "no_such_scenario"][..],
        &["topology", "show", "no_such_topology"][..],
        &["evaluate", "/definitely/not/here.topo", "/nor/this.tm"][..],
    ] {
        let out = cli(args);
        assert_eq!(code(&out), 66, "{args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
    }
}

#[test]
fn parse_errors_exit_65() {
    let dir = std::env::temp_dir();
    let scn = dir.join("fubar_cli_test_corrupt.scn");
    let topo = dir.join("fubar_cli_test_corrupt.topo");
    std::fs::write(&scn, "scenario broken\nduration -5s\n").unwrap();
    std::fs::write(&topo, "topology broken\nnode a\nlink a a 1e308Gbps 2ms\n").unwrap();
    for args in [
        &["scenario", "show", scn.to_str().unwrap()][..],
        &["topology", "validate", topo.to_str().unwrap()][..],
    ] {
        let out = cli(args);
        assert_eq!(code(&out), 65, "{args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
    }
    let _ = std::fs::remove_file(scn);
    let _ = std::fs::remove_file(topo);
}

#[test]
fn unwritable_output_exits_74() {
    let out = cli(&[
        "scenario",
        "run",
        "flash_crowd",
        "--out",
        "/definitely/not/a/dir/log.txt",
    ]);
    assert_eq!(code(&out), 74, "{}", stderr(&out));
    assert_one_line_error(&out);
}

#[test]
fn success_paths_exit_0_and_round_trip() {
    let out = cli(&["scenario", "show", "chaos_blackout"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("controller blackout 119s 207s"),
        "canonical spec must carry the chaos stanza:\n{text}"
    );
    // What `show` prints is the canonical form: showing it again from a
    // file yields the identical bytes.
    let dir = std::env::temp_dir();
    let path = dir.join("fubar_cli_test_roundtrip.scn");
    std::fs::write(&path, &text).unwrap();
    let again = cli(&["scenario", "show", path.to_str().unwrap()]);
    assert_eq!(code(&again), 0);
    assert_eq!(
        text.as_bytes(),
        &again.stdout[..],
        "canonical serialization must be a fixed point"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn lint_subcommand_honors_the_exit_code_contract() {
    // Clean repo: exit 0 on both passes (the workspace integration
    // tests in crates/lint assert the "clean" part; here we assert the
    // CLI plumbing and codes).
    let root = env!("CARGO_MANIFEST_DIR");
    let out = cli(&["lint", "check", "--root", root]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let out = cli(&["lint", "ledger", "--root", root]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    // A directory that is not the workspace: not-found (66).
    let out = cli(&[
        "lint",
        "check",
        "--root",
        std::env::temp_dir().to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 66, "{}", stderr(&out));
    assert_one_line_error(&out);
    // Bad flags: usage (2).
    let out = cli(&["lint", "--format", "yaml"]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert_one_line_error(&out);
    // JSON report lands on disk with the schema header.
    let report = std::env::temp_dir().join("fubar_cli_test_lint_report.json");
    let out = cli(&[
        "lint",
        "ledger",
        "--root",
        root,
        "--format",
        "json",
        "--out",
        report.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"schema\": \"fubar-lint/1\""), "{json}");
    let _ = std::fs::remove_file(report);
}

#[test]
fn search_check_mismatch_exits_65() {
    // A tiny base keeps the search cheap in debug CI; the committed
    // spec under --check is just a different scenario, so the check
    // must fail with a data error.
    let dir = std::env::temp_dir();
    let base = dir.join("fubar_cli_test_search_base.scn");
    let committed = dir.join("fubar_cli_test_search_committed.scn");
    std::fs::write(
        &base,
        "scenario tiny\n\
         topology ring 4 600kbps 2ms\n\
         duration 40s\n\
         epoch 10s\n\
         seed 3\n\
         workload flows 2 4\n\
         reoptimize every 20s warmup 10s\n",
    )
    .unwrap();
    std::fs::write(
        &committed,
        "scenario tiny_worst\n\
         topology ring 4 600kbps 2ms\n\
         duration 40s\n\
         epoch 10s\n\
         seed 3\n\
         workload flows 2 4\n\
         reoptimize every 20s warmup 10s\n\
         optimize budget 1\n",
    )
    .unwrap();
    let out = cli(&[
        "scenario",
        "search",
        base.to_str().unwrap(),
        "--seed",
        "1",
        "--candidates",
        "1",
        "--name",
        "tiny_worst",
        "--check",
        committed.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 65, "{}", stderr(&out));
    assert_one_line_error(&out);
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(committed);
}
