//! Cross-crate integration: serialization round trips feeding the
//! optimizer, classifier-driven matrices, rule-set installation, and the
//! public prelude surface.

use fubar::prelude::*;
use fubar::topology::{format, generators};
use fubar::traffic::workload;
use fubar::traffic::{Classifier, FlowFeatures, OperatorRule, Protocol};

#[test]
fn topology_survives_text_round_trip_through_the_optimizer() {
    let topo = generators::abilene(Bandwidth::from_mbps(3.0));
    let text = format::serialize(&topo);
    let back = format::parse(&text).expect("serialized topology parses");
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (3, 6),
            ..Default::default()
        },
        5,
    );
    let a = Optimizer::with_defaults(&topo, &tm).run();
    let b = Optimizer::with_defaults(&back, &tm).run();
    assert!(
        (a.report.network_utility - b.report.network_utility).abs() < 1e-12,
        "identical topologies must optimize identically"
    );
    assert_eq!(a.commits, b.commits);
}

#[test]
fn classifier_builds_a_matrix_the_optimizer_accepts() {
    // Simulate an operator classifying observed flows into aggregates.
    let topo = generators::ring(5, Bandwidth::from_mbps(1.0), Delay::from_ms(2.0));
    let classifier = Classifier::with_rules([OperatorRule {
        protocol: Protocol::Udp,
        dst_port: 4500,
        class: TrafficClass::RealTime,
    }]);
    let observed = [
        (Protocol::Udp, 4500u16, None, 0u32, 2u32, 12u32), // operator rule
        (Protocol::Tcp, 443, Some(90_000.0), 1, 3, 8),
        (Protocol::Tcp, 443, Some(1_600_000.0), 2, 4, 3), // fast -> large
        (Protocol::Udp, 20_000, None, 3, 0, 6),           // RTP range
    ];
    let mut aggregates = Vec::new();
    for &(proto, port, rate, src, dst, flows) in &observed {
        let class = classifier.classify(&FlowFeatures {
            protocol: proto,
            dst_port: port,
            rate_estimate_bps: rate,
        });
        aggregates.push(Aggregate::new(
            AggregateId(0),
            NodeId(src),
            NodeId(dst),
            class,
            flows,
        ));
    }
    let tm = TrafficMatrix::new(aggregates);
    assert_eq!(tm.class_census().0, 2, "two real-time aggregates");
    assert_eq!(tm.large_ids().len(), 1, "one large aggregate");
    let result = Optimizer::with_defaults(&topo, &tm).run();
    result.allocation.validate(&tm).unwrap();
}

#[test]
fn rules_round_trip_through_the_fabric() {
    let topo = generators::abilene(Bandwidth::from_mbps(3.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (2, 6),
            ..Default::default()
        },
        9,
    );
    let result = Optimizer::with_defaults(&topo, &tm).run();
    let rules = RuleSet::from_allocation(&result.allocation, &tm);

    let mut fabric = Fabric::new(topo, tm.clone(), Delay::from_secs(10.0));
    fabric.install(rules);
    let epoch = fabric.run_epoch();
    // With ground-truth traffic equal to what the optimizer planned for,
    // the fabric must reproduce the optimizer's predicted utility.
    assert!(
        (epoch.report.network_utility - result.report.network_utility).abs() < 1e-9,
        "fabric {} vs optimizer {}",
        epoch.report.network_utility,
        result.report.network_utility
    );
}

#[test]
fn flow_conservation_holds_across_the_whole_pipeline() {
    let topo = generators::grid(3, 3, Bandwidth::from_mbps(1.0), Delay::from_ms(1.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (2, 5),
            ..Default::default()
        },
        17,
    );
    let result = Optimizer::with_defaults(&topo, &tm).run();
    result.allocation.validate(&tm).unwrap();
    let bundles = result.allocation.bundles(&tm);
    // Every aggregate's flows exactly covered.
    let mut per_agg = vec![0u32; tm.len()];
    for b in &bundles {
        per_agg[b.aggregate.index()] += b.flow_count;
    }
    for a in tm.iter() {
        assert_eq!(per_agg[a.id.index()], a.flow_count);
    }
    // And the model never exceeds capacity.
    let out = FlowModel::with_defaults(&topo).evaluate(&bundles);
    for l in topo.links() {
        assert!(out.link_load[l.index()].bps() <= topo.capacity(l).bps() + 1e-3);
    }
}

#[test]
fn prelude_surface_is_usable() {
    // Compile-time check that the prelude exposes what examples need.
    let _cfg = OptimizerConfig::default();
    let _policy = PathPolicy::ThreePaths;
    let _obj = Objective::NetworkUtility;
    let _mc = ModelConfig::default();
    let _wc = WorkloadConfig::default();
    let _cl = ClosedLoopConfig::default();
    let _fc = FubarController::default();
    let _b = Bandwidth::from_mbps(1.0);
    let _d = Delay::from_ms(1.0);
}
