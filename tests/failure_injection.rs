//! Failure-injection integration tests: the closed loop under fiber
//! cuts, measurement noise, and demand churn — all at once.

use fubar::prelude::*;
use fubar::sdn::{DriftConfig, FailureEvent, MeasurementConfig};
use fubar::topology::generators;
use fubar::traffic::workload;

fn build_fabric(seed: u64) -> Fabric {
    let topo = generators::abilene(Bandwidth::from_mbps(3.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (3, 8),
            ..Default::default()
        },
        seed,
    );
    Fabric::new(topo, tm, Delay::from_secs(30.0))
}

#[test]
fn controller_routes_around_a_cut_within_one_cycle() {
    let fabric = build_fabric(11);
    let cut = fabric
        .topology()
        .graph()
        .find_link(
            fabric.topology().node("Denver").unwrap(),
            fabric.topology().node("KansasCity").unwrap(),
        )
        .unwrap();
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            controller: FubarController {
                reoptimize_every: 1,
                warmup_epochs: 0,
                ..Default::default()
            },
            failures: vec![FailureEvent {
                fail_epoch: 3,
                repair_epoch: None,
                link: cut,
            }],
            ..Default::default()
        },
    );
    let log = sim.run(6);
    // Epoch 3 sees the cut with old rules -> fallbacks. Epoch 4 runs
    // with post-cut rules -> no fallbacks, nothing crosses the dead link.
    assert!(log[3].epoch.fallback_count > 0);
    assert_eq!(log[4].epoch.fallback_count, 0);
    assert_eq!(
        log[4].epoch.outcome.link_load[cut.index()],
        Bandwidth::ZERO,
        "no traffic on the failed link after reoptimization"
    );
    // Utility stays strictly positive throughout (no black-holing).
    for r in &log {
        assert!(r.epoch.report.network_utility > 0.2);
    }
}

#[test]
fn double_failure_still_converges() {
    let fabric = build_fabric(13);
    let topo = fabric.topology();
    let cut1 = topo
        .graph()
        .find_link(
            topo.node("Denver").unwrap(),
            topo.node("KansasCity").unwrap(),
        )
        .unwrap();
    let cut2 = topo
        .graph()
        .find_link(topo.node("Chicago").unwrap(), topo.node("NewYork").unwrap())
        .unwrap();
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            controller: FubarController {
                reoptimize_every: 1,
                warmup_epochs: 0,
                ..Default::default()
            },
            failures: vec![
                FailureEvent {
                    fail_epoch: 2,
                    repair_epoch: Some(8),
                    link: cut1,
                },
                FailureEvent {
                    fail_epoch: 4,
                    repair_epoch: Some(8),
                    link: cut2,
                },
            ],
            ..Default::default()
        },
    );
    let log = sim.run(10);
    assert_eq!(log[5].failed_links, 4, "two duplex pairs down");
    assert_eq!(log[9].failed_links, 0, "both repaired");
    // After both repairs and a reoptimization, utility returns to the
    // healthy neighbourhood.
    let healthy = log[1].epoch.report.network_utility;
    let recovered = log[9].epoch.report.network_utility;
    assert!(
        recovered > healthy * 0.9,
        "recovery: healthy {healthy}, recovered {recovered}"
    );
}

#[test]
fn noise_and_drift_do_not_break_the_loop() {
    let fabric = build_fabric(17);
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            measurement: MeasurementConfig {
                noise_rel_std: 0.15, // very noisy counters
                ..Default::default()
            },
            controller: FubarController {
                reoptimize_every: 2,
                warmup_epochs: 1,
                ..Default::default()
            },
            drift: Some(DriftConfig {
                max_step: 2,
                min_flows: 1,
                max_flows: 16,
            }),
            seed: 23,
            ..Default::default()
        },
    );
    let log = sim.run(12);
    for r in &log {
        let u = r.epoch.report.network_utility;
        assert!((0.0..=1.0).contains(&u));
    }
    // The controller should still, on average, beat the boot state.
    let early: f64 = log[..3]
        .iter()
        .map(|r| r.epoch.report.network_utility)
        .sum::<f64>()
        / 3.0;
    let late: f64 = log[9..]
        .iter()
        .map(|r| r.epoch.report.network_utility)
        .sum::<f64>()
        / 3.0;
    assert!(
        late >= early - 0.05,
        "noisy control must not regress badly: early {early}, late {late}"
    );
}

#[test]
fn partitioning_failure_degrades_gracefully() {
    // A line topology: cutting any link partitions it. Traffic across
    // the cut black-holes (utility contribution 0) but the loop and the
    // rest of the network keep working.
    let topo = generators::line(4, Bandwidth::from_mbps(2.0), Delay::from_ms(2.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (2, 4),
            ..Default::default()
        },
        3,
    );
    let middle = topo
        .graph()
        .find_link(topo.node("n1").unwrap(), topo.node("n2").unwrap())
        .unwrap();
    let fabric = Fabric::new(topo, tm, Delay::from_secs(10.0));
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            controller: FubarController {
                reoptimize_every: 1,
                warmup_epochs: 0,
                ..Default::default()
            },
            failures: vec![FailureEvent {
                fail_epoch: 2,
                repair_epoch: Some(5),
                link: middle,
            }],
            ..Default::default()
        },
    );
    let log = sim.run(7);
    let before = log[1].epoch.report.network_utility;
    let during = log[3].epoch.report.network_utility;
    let after = log[6].epoch.report.network_utility;
    assert!(during < before, "partition must hurt");
    assert!(during > 0.0, "intra-side traffic still flows");
    assert!(after > during, "repair restores utility");
}

#[test]
fn total_partition_carries_zero_utility_aggregates_and_revives() {
    // Ring of 6: cutting both of n0's duplex links isolates it outright
    // — every aggregate into or out of n0 has *no* physical path. The
    // loop must keep re-optimizing through the partition (warm start
    // rebases across the partitioned view), carry the dead aggregates
    // at zero utility without a single NaN, and revive them on repair.
    let topo = generators::ring(6, Bandwidth::from_mbps(1.0), Delay::from_ms(2.0));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (2, 4),
            ..Default::default()
        },
        5,
    );
    let cut_a = topo
        .graph()
        .find_link(topo.node("n5").unwrap(), topo.node("n0").unwrap())
        .unwrap();
    let cut_b = topo
        .graph()
        .find_link(topo.node("n0").unwrap(), topo.node("n1").unwrap())
        .unwrap();
    let fabric = Fabric::new(topo, tm, Delay::from_secs(10.0));
    let mut sim = ClosedLoop::new(
        fabric,
        ClosedLoopConfig {
            controller: FubarController {
                reoptimize_every: 1,
                warmup_epochs: 0,
                ..Default::default()
            },
            failures: vec![
                FailureEvent {
                    fail_epoch: 2,
                    repair_epoch: Some(6),
                    link: cut_a,
                },
                FailureEvent {
                    fail_epoch: 2,
                    repair_epoch: Some(6),
                    link: cut_b,
                },
            ],
            ..Default::default()
        },
    );
    let log = sim.run(9);
    for (i, r) in log.iter().enumerate() {
        let u = r.epoch.report.network_utility;
        assert!(
            u.is_finite(),
            "epoch {i}: total partition must never produce NaN/inf utility, got {u}"
        );
    }
    assert_eq!(log[3].failed_links, 4, "both duplex pairs down");
    let before = log[1].epoch.report.network_utility;
    let during = log[4].epoch.report.network_utility;
    let after = log[8].epoch.report.network_utility;
    assert!(during < before, "isolation must hurt: {during} vs {before}");
    assert!(during > 0.0, "the surviving arc still carries traffic");
    assert!(
        after > during,
        "repair + reoptimization must revive n0's aggregates"
    );
    assert!(
        after > before * 0.9,
        "recovery: before {before}, after {after}"
    );
}

#[test]
fn chaos_partition_scenario_survives_total_isolation_of_n5() {
    // The committed worst case found by `scenario search`: the n5-n6
    // cut at 68s plus the scripted n4-n5 cut at 70s isolates n5 until
    // the 120s repair, with the optimizer starved to 4 moves per run.
    // The derived regression: utilities stay finite through the total
    // partition, the partition hurts, and repairs revive the node.
    let mut spec = fubar::scenario::catalog::load("chaos_partition").unwrap();
    spec.duration = fubar::topology::Delay::from_secs(170.0);
    let log = fubar::scenario::run(&spec, spec.seed).unwrap();
    let epochs: Vec<(f64, f64)> = log
        .records
        .iter()
        .filter(|r| r.what.starts_with("epoch"))
        .map(|r| (r.time_s, r.utility))
        .collect();
    for &(t, u) in &epochs {
        assert!(u.is_finite(), "NaN/inf utility at t={t}");
    }
    let min_in = |lo: f64, hi: f64| {
        epochs
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, u)| u)
            .fold(f64::INFINITY, f64::min)
    };
    let before = min_in(16.0, 60.0);
    let during = min_in(72.0, 120.0);
    let after = epochs
        .iter()
        .filter(|&&(t, _)| t >= 152.0)
        .map(|&(_, u)| u)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(during < before, "isolation must hurt: {during} vs {before}");
    assert!(during > 0.0, "the surviving arc still carries traffic");
    assert!(after > during, "repairs must revive: {after} vs {during}");
}
