//! Integration tests asserting the paper's qualitative claims end to
//! end, on workloads small enough for CI but structurally identical to
//! the §3 evaluation.

use fubar::core::baselines;
use fubar::core::experiments::{delay_cdf, percentile};
use fubar::prelude::*;
use fubar::topology::generators;
use fubar::traffic::workload;

/// A mid-size scenario: Abilene with capacity tight enough that
/// shortest-path routing congests but spreading fixes most of it.
fn scenario(mbps: f64, seed: u64) -> (Topology, TrafficMatrix) {
    let topo = generators::abilene(Bandwidth::from_mbps(mbps));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (4, 12),
            ..Default::default()
        },
        seed,
    );
    (topo, tm)
}

#[test]
fn fubar_never_does_worse_than_shortest_path() {
    for seed in [1, 2, 3] {
        let (topo, tm) = scenario(4.0, seed);
        let sp = baselines::shortest_path(&topo, &tm);
        let result = Optimizer::with_defaults(&topo, &tm).run();
        assert!(
            result.report.network_utility >= sp.report.network_utility - 1e-12,
            "seed {seed}: shortest path is the lower bound (paper §3)"
        );
    }
}

#[test]
fn trace_is_monotone_and_bounded_by_upper_bound() {
    let (topo, tm) = scenario(4.0, 7);
    let ub = baselines::upper_bound(&topo, &tm);
    let result = Optimizer::with_defaults(&topo, &tm).run();
    assert!(
        result.trace.is_monotone(),
        "greedy steps only improve (§2.5)"
    );
    assert!(
        result.report.network_utility <= ub.mean + 1e-9,
        "isolation bound dominates any shared allocation"
    );
}

#[test]
fn provisioned_case_eliminates_congestion() {
    // Generous capacity relative to the workload: FUBAR must fully
    // decongest (the paper's provisioned case, Fig 3). Note Abilene is
    // sparse: below ~16 Mb/s some cuts are structurally saturated and no
    // routing can decongest them, so this uses 16 Mb/s.
    let (topo, tm) = scenario(16.0, 5);
    let sp = baselines::shortest_path(&topo, &tm);
    assert!(
        sp.outcome.is_congested(),
        "scenario must start congested for the claim to be meaningful"
    );
    let result = Optimizer::with_defaults(&topo, &tm).run();
    assert_eq!(result.termination, Termination::NoCongestion);
    assert!(result.outcome.congested.is_empty());
    // When the two utilization curves meet, demand has been satisfied.
    let last = result.trace.last().unwrap();
    assert!(
        (last.actual_utilization - last.demanded_utilization).abs() < 1e-6,
        "actual {} vs demanded {}",
        last.actual_utilization,
        last.demanded_utilization
    );
}

#[test]
fn underprovisioned_case_keeps_congestion_but_improves() {
    // Starved capacity: congestion cannot be eliminated (Fig 4).
    let (topo, tm) = scenario(2.0, 5);
    let result = Optimizer::with_defaults(&topo, &tm).run();
    assert!(
        result.outcome.is_congested(),
        "underprovisioned case cannot be fully decongested"
    );
    let initial = result.trace.initial().unwrap().network_utility;
    assert!(
        result.report.network_utility > initial,
        "FUBAR still improves substantially"
    );
    let last = result.trace.last().unwrap();
    assert!(
        last.demanded_utilization > last.actual_utilization,
        "a demand/actual gap remains when underprovisioned"
    );
}

#[test]
fn prioritizing_large_flows_lifts_them() {
    // Fig 5: raising large aggregates' weight lifts their utility at
    // little cost to the rest. A raised large-probability guarantees the
    // 110-aggregate matrix actually draws some heavy hitters.
    let topo = generators::abilene(Bandwidth::from_mbps(2.5));
    let tm = workload::generate(
        &topo,
        &WorkloadConfig {
            include_intra_pop: false,
            flow_count: (4, 12),
            large_probability: 0.08,
            ..Default::default()
        },
        11,
    );
    assert!(!tm.large_ids().is_empty(), "need large aggregates");
    let neutral = Optimizer::with_defaults(&topo, &tm).run();
    let prioritized_tm = tm.with_large_priority(8.0);
    let prioritized = Optimizer::with_defaults(&topo, &prioritized_tm).run();
    let ln = neutral.report.large_average.unwrap();
    let lp = prioritized.report.large_average.unwrap();
    assert!(
        lp >= ln - 1e-9,
        "prioritized large flows must not do worse: {ln} -> {lp}"
    );
    // Overall utility (flow-weighted, neutral weights for comparability)
    // should be roughly unchanged: recompute the neutral-weight utility
    // of the prioritized allocation.
    let bundles = prioritized.allocation.bundles(&tm);
    let outcome = FlowModel::with_defaults(&topo).evaluate(&bundles);
    let neutral_view = fubar::model::utility_report(&tm, &bundles, &outcome);
    assert!(
        (neutral_view.network_utility - neutral.report.network_utility).abs() < 0.1,
        "overall utility roughly unchanged (paper: ~1% shift): {} vs {}",
        neutral_view.network_utility,
        neutral.report.network_utility
    );
}

#[test]
fn relaxing_delay_lengthens_paths_and_helps_utility() {
    // Fig 6: doubling small flows' delay parameter lets the optimizer
    // use longer paths; delays stretch, utility does not drop.
    let (topo, tm) = scenario(2.0, 3);
    let normal = Optimizer::with_defaults(&topo, &tm).run();
    let relaxed_tm = tm.with_relaxed_small_delays(2.0);
    let relaxed = Optimizer::with_defaults(&topo, &relaxed_tm).run();

    assert!(
        relaxed.report.network_utility >= normal.report.network_utility - 1e-9,
        "relaxation can only help the objective: {} -> {}",
        normal.report.network_utility,
        relaxed.report.network_utility
    );
    // The paper's directional claim (delays lengthen) holds at scale
    // (see the fig6 bench output on the full HE case); on this small
    // instance the greedy search adds jitter, so allow a 10% tolerance
    // rather than strict monotonicity per percentile.
    let cdf_n = delay_cdf(&normal, &tm);
    let cdf_r = delay_cdf(&relaxed, &relaxed_tm);
    let p95_n = percentile(&cdf_n, 95.0).unwrap();
    let p95_r = percentile(&cdf_r, 95.0).unwrap();
    assert!(
        p95_r >= p95_n * 0.9,
        "tail delay should not collapse when delay is relaxed: {p95_n} -> {p95_r}"
    );
}

#[test]
fn path_sets_stay_paper_sized() {
    // §2.4: "approximately ten to fifteen paths in the path set".
    let (topo, tm) = scenario(2.0, 9);
    let result = Optimizer::with_defaults(&topo, &tm).run();
    let max = result.allocation.max_path_set_size();
    assert!(
        max <= 25,
        "path sets should stay small (paper: ~10-15), got {max}"
    );
}

#[test]
fn runs_are_deterministic() {
    let (topo, tm) = scenario(3.0, 13);
    let a = Optimizer::with_defaults(&topo, &tm).run();
    let b = Optimizer::with_defaults(&topo, &tm).run();
    assert_eq!(a.commits, b.commits);
    assert!((a.report.network_utility - b.report.network_utility).abs() < 1e-15);
    assert_eq!(a.outcome.congested, b.outcome.congested);
}

#[test]
fn ecmp_and_cspf_sit_between_sp_and_fubar_on_average() {
    // Not a theorem, but across a few seeds the aggregate ordering the
    // paper implies (§4) should hold on average.
    let mut sp_sum = 0.0;
    let mut ecmp_sum = 0.0;
    let mut fubar_sum = 0.0;
    for seed in [1, 2, 3, 4] {
        let (topo, tm) = scenario(2.5, seed);
        sp_sum += baselines::shortest_path(&topo, &tm).report.network_utility;
        ecmp_sum += baselines::ecmp(&topo, &tm, 4, 1e-6).report.network_utility;
        fubar_sum += Optimizer::with_defaults(&topo, &tm)
            .run()
            .report
            .network_utility;
    }
    assert!(
        fubar_sum >= ecmp_sum - 1e-9,
        "FUBAR >= ECMP on average: {fubar_sum} vs {ecmp_sum}"
    );
    assert!(
        fubar_sum > sp_sum,
        "FUBAR > shortest path on average: {fubar_sum} vs {sp_sum}"
    );
}
