//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no registry access, so benches link
//! against this shim: same surface (`Criterion`, groups, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros), a much simpler
//! engine (fixed warm-up, adaptive iteration count, mean/min report to
//! stdout — no statistics, plots, or baselines).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement knobs shared by [`Criterion`] and groups.
#[derive(Clone, Copy, Debug)]
struct Settings {
    /// Target number of timed samples.
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            budget: Duration::from_secs(3),
        }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher<'a> {
    settings: Settings,
    result: &'a mut Option<Sample>,
}

/// One benchmark's measurement.
#[derive(Clone, Copy, Debug)]
struct Sample {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `f`, storing mean and best-of-run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how many iterations fit ~10 ms?
        let cal_start = Instant::now();
        std::hint::black_box(f());
        let once = cal_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let run_start = Instant::now();
        for _ in 0..self.settings.sample_size {
            let s = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            let dt = s.elapsed();
            let per_iter = dt / per_sample as u32;
            min = min.min(per_iter);
            total += dt;
            iters += per_sample;
            if run_start.elapsed() > self.settings.budget {
                break;
            }
        }
        *self.result = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            iters,
        });
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

fn run_one(
    label: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut result = None;
    let mut b = Bencher {
        settings,
        result: &mut result,
    };
    f(&mut b);
    match result {
        Some(s) => {
            let rate = throughput.map_or(String::new(), |t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.0} elem/s)", n as f64 / s.mean.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("  ({:.0} B/s)", n as f64 / s.mean.as_secs_f64())
                }
            });
            println!(
                "bench {label:<48} mean {:>12?}  min {:>12?}  iters {}{}",
                s.mean, s.min, s.iters, rate
            );
        }
        None => println!("bench {label:<48} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.settings, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.settings, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.settings, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Either a `&str` or a [`BenchmarkId`] — group benchmarks accept both.
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Opaque value barrier, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn shim_runs_benches() {
        let mut c = Criterion::default();
        quick(&mut c);
    }
}
