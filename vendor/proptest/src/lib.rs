//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, `prop_assert*`, range/tuple/vec/`Just`
//! strategies, `prop_map`, `prop_flat_map`, `prop_oneof!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (all
//!   strategies produce `Debug` values) but does not minimize them.
//! * **Deterministic seeding.** Case `i` of test `t` is seeded from a
//!   hash of `(t, i)`, so failures reproduce exactly across runs — there
//!   is no environment-variable seed override.
//!
//! The assertion macros short-circuit the case body by returning
//! `Err(TestCaseError)`, exactly like the real crate, so `?`-free bodies
//! with early `return Ok(())` work unchanged.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed case: carries the formatted assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The per-test generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | 0x9e37)))
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator. Unlike the real crate there is no shrinking tree;
/// `generate` draws a single value.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u32, u64, usize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The full-range strategy for the type.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u8, u32, u64, f64);

/// Type-erased strategy, the building block of [`Union`].
pub trait StrategyObj<T> {
    /// Draws one value.
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among heterogeneous strategies with a common value
/// type — what [`prop_oneof!`] builds.
pub struct Union<T> {
    options: Vec<Box<dyn StrategyObj<T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn StrategyObj<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate_obj(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element count for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Uniform choice among strategy arms sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::StrategyObj<_>>),+])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!("" $(, stringify!($arg), " = {:?}; ")*)
                        $(, $arg)*
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case} failed: {e}\n  inputs: {inputs}"
                        ),
                        Err(payload) => {
                            eprintln!("proptest case {case} panicked\n  inputs: {inputs}");
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(ab in (0u32..10, 5usize..9), x in 0.0f64..1.0) {
            let (a, b) = ab;
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn maps_and_vecs(v in crate::collection::vec(0u32..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u32), Just(2u32), 5u32..7]) {
            prop_assert!([1u32, 2, 5, 6].contains(&k));
        }

        #[test]
        fn flat_map_respects_dependency(pair in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..u64::MAX;
        assert_eq!(s.clone().generate(&mut a), s.generate(&mut b));
    }
}
