//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and
//! `Rng::gen_bool`.
//!
//! The build environment has no registry access, so the workspace vendors
//! this shim instead of the real crate. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, with distribution
//! quality far beyond what the simulations here need. The streams do NOT
//! match the real `rand` crate's `StdRng` (which is ChaCha12); nothing in
//! the workspace depends on cross-crate stream compatibility, only on
//! same-seed reproducibility.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw from `[0, span)` (Lemire's multiply-shift; the
/// modulo bias at these span sizes would be < 2^-32 anyway).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return lo + rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

int_ranges!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval_is_unit() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.gen_range(3u32..7);
            assert!((3..7).contains(&a));
            let b = r.gen_range(3u32..=7);
            assert!((3..=7).contains(&b));
            let c = r.gen_range(10usize..11);
            assert_eq!(c, 10);
            let d = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(5u32..5);
    }
}
